#include "core/cloud.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace cloudfog::core {

namespace {

// splitmix64 finalizer — mixes the bit patterns of an endpoint's fields
// into a hash key for the nearest-datacenter memo.
std::uint64_t mix64(std::uint64_t v) {
  v += 0x9e3779b97f4a7c15ull;
  v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ull;
  v = (v ^ (v >> 27)) * 0x94d049bb133111ebull;
  return v ^ (v >> 31);
}

}  // namespace

std::size_t Cloud::EndpointKeyHash::operator()(const EndpointKey& k) const {
  return static_cast<std::size_t>(mix64(k.x ^ mix64(k.y ^ mix64(k.access))));
}

Cloud::Cloud(std::vector<DatacenterState> datacenters, const net::LatencyModel& latency,
             net::IpLocator locator)
    : datacenters_(std::move(datacenters)), latency_(latency), locator_(std::move(locator)) {
  CLOUDFOG_REQUIRE(!datacenters_.empty(), "cloud needs at least one datacenter");
}

DatacenterState& Cloud::datacenter(std::size_t i) {
  CLOUDFOG_REQUIRE(i < datacenters_.size(), "datacenter index out of range");
  return datacenters_[i];
}

const DatacenterState& Cloud::datacenter(std::size_t i) const {
  CLOUDFOG_REQUIRE(i < datacenters_.size(), "datacenter index out of range");
  return datacenters_[i];
}

std::size_t Cloud::nearest_datacenter(const net::Endpoint& who) const {
  // The datacenter set is fixed at construction and endpoints never move,
  // so the first answer per distinct endpoint is authoritative. Keyed by
  // exact bit patterns — no tolerance, no false sharing between endpoints.
  const EndpointKey key{std::bit_cast<std::uint64_t>(who.position.x_km),
                        std::bit_cast<std::uint64_t>(who.position.y_km),
                        std::bit_cast<std::uint64_t>(who.access_latency_ms)};
  const auto hit = nearest_dc_memo_.find(key);
  if (hit != nearest_dc_memo_.end()) return hit->second;

  std::size_t best = 0;
  double best_rtt = latency_.rtt_ms(who, datacenters_[0].endpoint);
  for (std::size_t i = 1; i < datacenters_.size(); ++i) {
    const double rtt = latency_.rtt_ms(who, datacenters_[i].endpoint);
    if (rtt < best_rtt) {
      best_rtt = rtt;
      best = i;
    }
  }
  nearest_dc_memo_.emplace(key, best);
  return best;
}

void Cloud::register_supernode(SupernodeState& sn, util::Rng& rng) {
  sn.ip = locator_.register_node(sn.endpoint.position, rng);
  ++registry_epoch_;
}

void Cloud::unregister_supernode(const SupernodeState& sn) {
  locator_.unregister_node(sn.ip);
  ++registry_epoch_;
}

std::vector<std::size_t> Cloud::candidate_supernodes(const net::Endpoint& player,
                                                     const std::vector<SupernodeState>& fleet,
                                                     std::size_t count) const {
  std::vector<std::size_t> out;
  candidate_supernodes_into(player, fleet, count, out);
  return out;
}

void Cloud::candidate_supernodes_into(const net::Endpoint& player,
                                      const std::vector<SupernodeState>& fleet, std::size_t count,
                                      std::vector<std::size_t>& out) const {
  if (mode_ == CandidateMode::kLinear) {
    candidate_supernodes_linear(player, fleet, count, out);
    return;
  }
  out.clear();
  if (count == 0 || fleet.empty()) return;
  ensure_index(fleet);
  index_.nearest_accepting(player.position, fleet, count, out);
}

void Cloud::candidate_supernodes_linear(const net::Endpoint& player,
                                        const std::vector<SupernodeState>& fleet,
                                        std::size_t count, std::vector<std::size_t>& out) const {
  out.clear();
  auto& scored = linear_scratch_;
  scored.clear();
  scored.reserve(fleet.size());
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const SupernodeState& sn = fleet[i];
    if (!sn.accepting()) continue;
    // Distance via the registry's (noisy) geolocation — the cloud does not
    // know the supernode's true position, only what its IP resolves to.
    const auto located = locator_.locate(sn.ip);
    const net::GeoPoint where = located.value_or(sn.endpoint.position);
    scored.emplace_back(net::distance_km(player.position, where), i);
  }
  const std::size_t take = std::min(count, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + static_cast<std::ptrdiff_t>(take),
                    scored.end(),
                    [](const std::pair<double, std::size_t>& a,
                       const std::pair<double, std::size_t>& b) {
                      if (a.first != b.first) return a.first < b.first;
                      return a.second < b.second;
                    });
  out.reserve(take);
  for (std::size_t i = 0; i < take; ++i) out.push_back(scored[i].second);
}

void Cloud::ensure_index(const std::vector<SupernodeState>& fleet) const {
  if (indexed_fleet_ == fleet.data() && indexed_size_ == fleet.size() &&
      indexed_epoch_ == registry_epoch_)
    return;
  std::vector<net::GeoPoint> positions;
  positions.reserve(fleet.size());
  for (const SupernodeState& sn : fleet)
    positions.push_back(locator_.locate(sn.ip).value_or(sn.endpoint.position));
  index_.rebuild(positions);
  indexed_fleet_ = fleet.data();
  indexed_size_ = fleet.size();
  indexed_epoch_ = registry_epoch_;
}

}  // namespace cloudfog::core
