# Empty compiler generated dependencies file for cloudfog_core.
# This may be replaced when dependencies are built.
