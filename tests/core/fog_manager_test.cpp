#include "core/fog_manager.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace cloudfog::core {
namespace {

class FogManagerTest : public ::testing::Test {
 protected:
  FogManagerTest()
      : latency_(net::LatencyModelConfig{}), catalog_(game::GameCatalog::paper_default()) {
    std::vector<DatacenterState> dcs(1);
    dcs[0].endpoint = net::make_infrastructure_endpoint({2000.0, 0.0});
    cloud_.emplace(std::move(dcs), latency_, net::IpLocator{0.0});
    fog_.emplace(FogManagerConfig{}, *cloud_, latency_);
  }

  void add_sn(double x, int capacity = 5, double access = 2.0) {
    SupernodeState sn;
    sn.id = fleet_.size();
    sn.endpoint = net::Endpoint{{x, 0.0}, access};
    sn.capacity = capacity;
    sn.upload_mbps = capacity * 2.0;
    util::Rng rng(fleet_.size() + 10);
    cloud_->register_supernode(sn, rng);
    fleet_.push_back(sn);
  }

  PlayerState make_player(double x, game::GameId game = 4) {
    PlayerState p;
    p.info.id = 0;
    p.info.endpoint = net::Endpoint{{x, 0.0}, 5.0};
    p.info.bandwidth = {10.0, 3.3};
    p.game = game;
    return p;
  }

  net::LatencyModel latency_;
  game::GameCatalog catalog_;
  std::optional<Cloud> cloud_;
  std::optional<FogManager> fog_;
  std::vector<SupernodeState> fleet_;
  util::Rng rng_{77};
};

TEST_F(FogManagerTest, SelectsNearbySupernodeAndClaimsSeat) {
  add_sn(10.0);
  PlayerState p = make_player(0.0);
  const auto outcome =
      fog_->select_supernode(p, fleet_, catalog_, /*day=*/1, /*reputation=*/false, rng_);
  EXPECT_EQ(outcome.serving.kind, ServingKind::kSupernode);
  EXPECT_EQ(outcome.serving.index, 0u);
  EXPECT_EQ(fleet_[0].served, 1);
  EXPECT_GT(outcome.join_latency_ms, 0.0);
  EXPECT_EQ(p.serving, outcome.serving);
}

TEST_F(FogManagerTest, FallsBackToCloudWithoutSupernodes) {
  PlayerState p = make_player(0.0);
  const auto outcome = fog_->select_supernode(p, fleet_, catalog_, 1, false, rng_);
  EXPECT_EQ(outcome.serving.kind, ServingKind::kCloud);
  EXPECT_EQ(outcome.capacity_asks, 0);
}

TEST_F(FogManagerTest, LmaxFiltersFarSupernodes) {
  // Game 0 has a 30 ms budget; a supernode 4000 km away cannot qualify.
  add_sn(4000.0);
  PlayerState p = make_player(0.0, /*game=*/0);
  const auto outcome = fog_->select_supernode(p, fleet_, catalog_, 1, false, rng_);
  EXPECT_EQ(outcome.serving.kind, ServingKind::kCloud);
  EXPECT_EQ(outcome.probes, 1);
  EXPECT_EQ(outcome.capacity_asks, 0);
}

TEST_F(FogManagerTest, LenientGameAcceptsFartherSupernode) {
  add_sn(4000.0);
  PlayerState p = make_player(0.0, /*game=*/4);  // 110 ms budget
  const auto outcome = fog_->select_supernode(p, fleet_, catalog_, 1, false, rng_);
  EXPECT_EQ(outcome.serving.kind, ServingKind::kSupernode);
}

TEST_F(FogManagerTest, ReputationOrdersSelection) {
  add_sn(10.0);
  add_sn(12.0);
  PlayerState p = make_player(0.0);
  // The player has rated supernode 1 highly and supernode 0 poorly.
  p.reputation.add_rating(0, 0.1, 1);
  p.reputation.add_rating(1, 0.95, 1);
  const auto outcome = fog_->select_supernode(p, fleet_, catalog_, 2, /*reputation=*/true, rng_);
  EXPECT_EQ(outcome.serving.index, 1u);
}

TEST_F(FogManagerTest, SequentialClaimSkipsFullSupernode) {
  add_sn(10.0, /*capacity=*/0);  // advertises but cannot accept
  add_sn(12.0, /*capacity=*/3);
  PlayerState p = make_player(0.0);
  p.reputation.add_rating(0, 0.9, 1);  // would be preferred if it had room
  const auto outcome = fog_->select_supernode(p, fleet_, catalog_, 2, true, rng_);
  EXPECT_EQ(outcome.serving.index, 1u);
}

TEST_F(FogManagerTest, ReleaseFreesSeat) {
  add_sn(10.0);
  PlayerState p = make_player(0.0);
  fog_->select_supernode(p, fleet_, catalog_, 1, false, rng_);
  ASSERT_EQ(fleet_[0].served, 1);
  fog_->release(p, fleet_);
  EXPECT_EQ(fleet_[0].served, 0);
  EXPECT_FALSE(p.serving.attached());
}

TEST_F(FogManagerTest, MigrationUsesCandidateCacheFirst) {
  add_sn(10.0);
  add_sn(20.0);
  PlayerState p = make_player(0.0);
  fog_->select_supernode(p, fleet_, catalog_, 1, false, rng_);
  const std::size_t original = p.serving.index;
  // Fail the serving supernode and migrate.
  fleet_[original].failed = true;
  fleet_[original].served = 0;
  p.serving = ServingRef{};
  const auto outcome = fog_->migrate(p, fleet_, catalog_, 1, false, rng_);
  EXPECT_EQ(outcome.serving.kind, ServingKind::kSupernode);
  EXPECT_NE(outcome.serving.index, original);
  // Migration pays the detection timeout on top of the probes.
  EXPECT_GE(outcome.join_latency_ms, FogManagerConfig{}.detection.detection_ms());
}

TEST_F(FogManagerTest, MigrationLatencyIsSubSecondScale) {
  // The paper measures ~0.8 s migrations (Fig. 9).
  add_sn(10.0);
  add_sn(30.0);
  PlayerState p = make_player(0.0);
  fog_->select_supernode(p, fleet_, catalog_, 1, false, rng_);
  fleet_[p.serving.index].failed = true;
  fleet_[p.serving.index].served = 0;
  p.serving = ServingRef{};
  const auto outcome = fog_->migrate(p, fleet_, catalog_, 1, false, rng_);
  EXPECT_GT(outcome.join_latency_ms, 400.0);
  EXPECT_LT(outcome.join_latency_ms, 3000.0);
}

TEST_F(FogManagerTest, SupernodeJoinLatencyIsOneCloudRoundTrip) {
  add_sn(100.0);
  const double join = fog_->supernode_join_latency_ms(fleet_[0]);
  const double rtt = latency_.rtt_ms(fleet_[0].endpoint, cloud_->datacenter(0).endpoint);
  EXPECT_NEAR(join, rtt + FogManagerConfig{}.connect_setup_ms, 1e-9);
}

TEST_F(FogManagerTest, ConfigValidation) {
  FogManagerConfig cfg;
  cfg.candidate_count = 0;
  EXPECT_THROW(FogManager(cfg, *cloud_, latency_), ConfigError);
}

}  // namespace
}  // namespace cloudfog::core
