// Playback-continuity metric.
//
// §4.1: "continuity is measured by the proportion of packets arrived
// within the required response latency over all packets in a game video",
// and a player is *satisfied* when that proportion reaches 95 %.
//
// Per-packet delivery time = deterministic response latency + a jitter
// term. Jitter is modelled as exponential with a mean that inflates with
// path congestion, so the on-time probability has the closed form
//   P(on time) = 1 − exp(−(req − lat)/jitter_mean)   for req > lat,
// and 0 otherwise. When the sustainable throughput is below the encoding
// bitrate, only the deliverable fraction of packets can be on time at all,
// multiplying the probability by min(1, throughput/bitrate).
#pragma once

#include <cstddef>

namespace cloudfog::video {

/// Fraction of players' packets considered "satisfied" (paper §4.3.1).
inline constexpr double kSatisfactionThreshold = 0.95;

/// P(latency + jitter ≤ requirement) with exponential jitter.
double on_time_probability(double latency_ms, double requirement_ms,
                           double jitter_mean_ms);

/// min(1, throughput/bitrate): the deliverable packet fraction.
double delivery_ratio(double throughput_kbps, double bitrate_kbps);

/// Combined per-packet on-time probability for a stream.
double packet_continuity(double latency_ms, double requirement_ms,
                         double jitter_mean_ms, double throughput_kbps,
                         double bitrate_kbps);

/// Accumulates continuity over a session (packet-weighted mean).
class ContinuityMeter {
 public:
  /// Records an interval during which `packets` packets experienced
  /// on-time probability `continuity`.
  void add(double continuity, double packets = 1.0);

  double packets() const { return packets_; }
  /// Packet-weighted average continuity; 1.0 for an empty meter (a player
  /// who received no packets missed none).
  double continuity() const;
  bool satisfied() const { return continuity() >= kSatisfactionThreshold; }
  void reset();

 private:
  double weighted_sum_ = 0.0;
  double packets_ = 0.0;
};

}  // namespace cloudfog::video
