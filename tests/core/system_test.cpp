#include "core/system.hpp"

#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "util/require.hpp"

namespace cloudfog::core {
namespace {

const Testbed& small_testbed() {
  static const Testbed tb(TestbedConfig::peersim(600), 11);
  return tb;
}

sim::CycleConfig short_run() {
  sim::CycleConfig cfg;
  cfg.total_cycles = 3;
  cfg.warmup_cycles = 1;
  return cfg;
}

TEST(System, CloudArchitectureServesEveryoneFromDatacenters) {
  System sys = make_cloud_system(small_testbed(), 1);
  const RunMetrics& m = sys.run(short_run());
  EXPECT_GT(m.online_sessions.mean(), 0.0);
  EXPECT_DOUBLE_EQ(m.fog_served_fraction.mean(), 0.0);
  EXPECT_GT(m.cloud_egress_mbps.mean(), 0.0);
}

TEST(System, CloudFogServesMostPlayersFromFog) {
  System sys = make_cloudfog_basic(small_testbed(), 2);
  const RunMetrics& m = sys.run(short_run());
  EXPECT_GT(m.fog_served_fraction.mean(), 0.5);
}

TEST(System, CdnArchitectureUsesEdgeServers) {
  System sys = make_cdn_system(small_testbed(), 3);
  sys.run(short_run());
  std::size_t total_served = 0;
  for (const auto& edge : sys.cdn_servers()) {
    EXPECT_GE(edge.served, 0);
    total_served += static_cast<std::size_t>(edge.served);
  }
  // Mid-run state is zeroed at day end, so check the metric instead.
  EXPECT_GT(sys.metrics().online_sessions.mean(), 0.0);
}

TEST(System, JoinLatenciesRecorded) {
  System sys = make_cloudfog_advanced(small_testbed(), 4);
  sys.run(short_run());
  EXPECT_GT(sys.metrics().player_join_latency_ms.count(), 0u);
  EXPECT_GT(sys.metrics().player_join_latency_ms.mean(), 0.0);
  // Player joins finish within a couple of seconds of protocol time.
  EXPECT_LT(sys.metrics().player_join_latency_ms.mean(), 3000.0);
}

TEST(System, SupernodeSeatAccountingNeverLeaks) {
  System sys = make_cloudfog_basic(small_testbed(), 5);
  const auto cycles = short_run();
  for (int day = 1; day <= cycles.total_cycles; ++day) {
    sys.begin_cycle(day);
    for (int sub = 1; sub <= 24; ++sub) {
      sys.run_subcycle(day, sub, false, sub >= 20);
      std::size_t seats_used = 0;
      for (const auto& sn : sys.fleet()) {
        ASSERT_GE(sn.served, 0);
        seats_used += static_cast<std::size_t>(sn.served);
      }
      std::size_t fog_players = 0;
      for (const auto& p : sys.players()) {
        if (p.online && p.serving.kind == ServingKind::kSupernode) ++fog_players;
      }
      ASSERT_EQ(seats_used, fog_players);
    }
    sys.end_cycle(day);
  }
}

TEST(System, EndOfDayDetachesEveryone) {
  System sys = make_cloudfog_basic(small_testbed(), 6);
  sys.begin_cycle(1);
  for (int sub = 1; sub <= 24; ++sub) sys.run_subcycle(1, sub, false, sub >= 20);
  sys.end_cycle(1);
  for (const auto& p : sys.players()) {
    ASSERT_FALSE(p.online);
  }
  for (const auto& sn : sys.fleet()) {
    ASSERT_EQ(sn.served, 0);
  }
}

TEST(System, FailureInjectionMigratesEveryAffectedPlayer) {
  System sys = make_cloudfog_basic(small_testbed(), 7);
  sys.begin_cycle(1);
  for (int sub = 1; sub <= 21; ++sub) sys.run_subcycle(1, sub, true, sub >= 20);
  const auto latencies = sys.inject_supernode_failures(5, 1);
  EXPECT_FALSE(latencies.empty());
  for (double ms : latencies) {
    EXPECT_GT(ms, 0.0);
    EXPECT_LT(ms, 10000.0);
  }
  // Nobody is left attached to a failed supernode.
  for (const auto& p : sys.players()) {
    if (p.online && p.serving.kind == ServingKind::kSupernode) {
      ASSERT_FALSE(sys.fleet()[p.serving.index].failed);
    }
  }
  sys.recover_supernodes();
  for (const auto& sn : sys.fleet()) ASSERT_FALSE(sn.failed);
}

TEST(System, ReputationRatingsAccumulateOverCycles) {
  System sys = make_cloudfog_advanced(small_testbed(), 8);
  sys.run(short_run());
  std::size_t rated_players = 0;
  for (const auto& p : sys.players()) {
    if (!p.reputation.rated_supernodes().empty()) ++rated_players;
  }
  EXPECT_GT(rated_players, 0u);
}

TEST(System, ThrottlingSetsWillingnessLevels) {
  System sys = make_cloudfog_basic(small_testbed(), 9);
  bool saw_80 = false;
  bool saw_50 = false;
  for (int day = 1; day <= 8; ++day) {
    sys.begin_cycle(day);
    for (const auto& sn : sys.fleet()) {
      if (sn.willingness == 0.8) saw_80 = true;
      if (sn.willingness == 0.5) saw_50 = true;
      ASSERT_TRUE(sn.willingness == 1.0 || sn.willingness == 0.8 || sn.willingness == 0.5);
    }
    sys.end_cycle(day);
  }
  EXPECT_TRUE(saw_80);
  EXPECT_TRUE(saw_50);
}

TEST(System, CoverageGrowsWithSupernodes) {
  SystemConfig few = cloudfog_basic_config(small_testbed(), 5);
  SystemConfig many = cloudfog_basic_config(
      small_testbed(), small_testbed().supernode_capable().size());
  const System sys_few(small_testbed(), few, 10);
  const System sys_many(small_testbed(), many, 10);
  for (double req : {50.0, 90.0}) {
    EXPECT_GE(sys_many.coverage(req), sys_few.coverage(req));
  }
}

TEST(System, CoverageMonotoneInRequirement) {
  const System sys = make_cloudfog_basic(small_testbed(), 11);
  double prev = 0.0;
  for (double req : {30.0, 50.0, 70.0, 90.0, 110.0}) {
    const double c = sys.coverage(req);
    ASSERT_GE(c, prev);
    ASSERT_LE(c, 1.0);
    prev = c;
  }
}

TEST(System, ArrivalWorkloadPopulatesAndDrains) {
  SystemConfig cfg = cloudfog_basic_config(small_testbed(), 30);
  cfg.workload = WorkloadMode::kArrivalRates;
  cfg.arrivals = ArrivalWorkload{30.0, 60.0};
  System sys(small_testbed(), cfg, 12);
  sys.begin_cycle(1);
  std::size_t peak_online = 0;
  for (int sub = 1; sub <= 24; ++sub) {
    sys.run_subcycle(1, sub, false, sub >= 20);
    std::size_t online = 0;
    for (const auto& p : sys.players()) {
      if (p.online) ++online;
    }
    peak_online = std::max(peak_online, online);
  }
  EXPECT_GT(peak_online, 50u);
}

TEST(System, FixedDeploymentLimitsPool) {
  SystemConfig cfg = cloudfog_basic_config(small_testbed(), 40);
  cfg.fixed_deployment = 10;
  const System sys(small_testbed(), cfg, 13);
  std::size_t deployed = 0;
  for (const auto& sn : sys.fleet()) {
    if (sn.deployed) ++deployed;
  }
  EXPECT_EQ(deployed, 10u);
}

TEST(System, ProvisioningNeverShrinksBelowBasePool) {
  SystemConfig cfg = cloudfog_basic_config(small_testbed(), 40);
  cfg.fixed_deployment = 15;
  cfg.strategies.provisioning = true;
  System sys(small_testbed(), cfg, 14);
  sys.run(short_run());
  std::size_t deployed = 0;
  for (const auto& sn : sys.fleet()) {
    if (sn.deployed) ++deployed;
  }
  EXPECT_GE(deployed, 15u);
}

TEST(System, ServerAssignmentMeasurable) {
  System sys = make_cloudfog_advanced(small_testbed(), 15);
  const double seconds = sys.measure_server_assignment_seconds();
  EXPECT_GT(seconds, 0.0);
  EXPECT_EQ(sys.metrics().server_assignment_seconds.count(), 1u);
}

TEST(System, SupernodeJoinLatenciesAvailable) {
  System sys = make_cloudfog_basic(small_testbed(), 16);
  const auto joins = sys.supernode_join_latencies();
  EXPECT_EQ(joins.size(), sys.fleet().size());
  for (double ms : joins) EXPECT_GT(ms, 0.0);
}

TEST(System, MosReportedOnTheQoeScale) {
  System sys = make_cloudfog_advanced(small_testbed(), 17);
  const RunMetrics& m = sys.run(short_run());
  ASSERT_GT(m.mos.count(), 0u);
  EXPECT_GE(m.mos.min(), 1.0);
  EXPECT_LE(m.mos.max(), 5.0);
}

TEST(System, CloudFogScoresHigherQoeThanCloud) {
  System fog = make_cloudfog_advanced(small_testbed(), 18);
  System cloud = make_cloud_system(small_testbed(), 18);
  EXPECT_GT(fog.run(short_run()).mos.mean(), cloud.run(short_run()).mos.mean());
}

TEST(System, DeterministicForSameSeed) {
  System a = make_cloudfog_advanced(small_testbed(), 99);
  System b = make_cloudfog_advanced(small_testbed(), 99);
  const RunMetrics& ma = a.run(short_run());
  const RunMetrics& mb = b.run(short_run());
  EXPECT_DOUBLE_EQ(ma.response_latency_ms.mean(), mb.response_latency_ms.mean());
  EXPECT_DOUBLE_EQ(ma.continuity.mean(), mb.continuity.mean());
  EXPECT_DOUBLE_EQ(ma.cloud_egress_mbps.mean(), mb.cloud_egress_mbps.mean());
}

}  // namespace
}  // namespace cloudfog::core
