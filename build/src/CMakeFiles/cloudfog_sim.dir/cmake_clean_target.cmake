file(REMOVE_RECURSE
  "libcloudfog_sim.a"
)
