// Seasonal ARIMA(0,1,1)×(0,1,1)_T one-step forecaster (paper §3.5, Eq. 14).
//
// With T windows per season (one week of m-hour windows), the one-step
// forecast is
//   N̂_t = N_{t−T} + N_{t−1} − N_{t−T−1}
//         − θ·W_{t−1} − Θ·W_{t−T} + θ·Θ·W_{t−T−1}
// where θ is the MA(1) coefficient, Θ the seasonal SMA(1) coefficient and
// W the innovation sequence, estimated recursively as W_t = N_t − N̂_t.
// Until a full season + 1 of history exists the forecaster falls back to
// persistence (last value), which is what a provider would do in week one.
#pragma once

#include <cstddef>
#include <optional>

#include "forecast/timeseries.hpp"

namespace cloudfog::forecast {

struct SarimaConfig {
  std::size_t season_length = 42;  ///< T = 24·7/m windows per week (m = 4 h)
  double theta = 0.3;              ///< MA(1) coefficient θ
  double seasonal_theta = 0.3;     ///< SMA(1) coefficient Θ
  /// Run the recursion on log-values (forecasts are exponentiated back).
  /// Player populations are multiplicative — a week-over-week growth rate
  /// on top of a high-amplitude diurnal shape — so the additive Eq. 14
  /// differences track the trend far better in log space. Requires
  /// strictly positive observations.
  bool log_transform = false;
};

class SeasonalArima {
 public:
  explicit SeasonalArima(SarimaConfig cfg);

  const SarimaConfig& config() const { return cfg_; }
  std::size_t observations() const { return history_.size(); }

  /// Feeds the realized value for the current window; updates residuals.
  void observe(double value);

  /// Forecast for the *next* window. Persistence until T+1 observations
  /// exist; nullopt only when no history at all.
  std::optional<double> forecast_next() const;

  /// True once the full Eq. 14 recursion (not persistence) is in use.
  bool seasonal_model_active() const { return history_.size() >= cfg_.season_length + 1; }

  /// Innovation (one-step error) history, same indexing as observations.
  const std::vector<double>& residuals() const { return residuals_; }

 private:
  double raw_forecast(std::size_t t) const;  // Eq. 14 for window t

  SarimaConfig cfg_;
  TimeSeries history_;
  std::vector<double> residuals_;  // W_t = N_t − N̂_t (0 while warming up)
};

/// Grid-searches (θ, Θ) over [0, 0.9]² to minimize one-step RMSE on a
/// training series; returns the best config with the given season length.
SarimaConfig fit_sarima(const std::vector<double>& training, std::size_t season_length,
                        int grid_steps = 10);

}  // namespace cloudfog::forecast
