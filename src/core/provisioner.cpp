#include "core/provisioner.hpp"

#include <algorithm>
#include <cmath>

#include "obs/obs.hpp"
#include "util/require.hpp"

namespace cloudfog::core {

Provisioner::Provisioner(ProvisionerConfig cfg) : cfg_(cfg), model_(cfg.sarima) {
  CLOUDFOG_REQUIRE(cfg.window_hours >= 1 && cfg.window_hours <= 24,
                   "window must be between 1 and 24 hours");
  CLOUDFOG_REQUIRE(cfg.epsilon >= 0.0, "ε must be non-negative");
}

void Provisioner::observe_window(double online_players) {
  CLOUDFOG_REQUIRE(online_players >= 0.0, "negative player count");
  auto& rec = obs::Recorder::global();
  if (rec.enabled()) {
    static const obs::CounterId windows = rec.registry().counter("provision.windows");
    rec.registry().add(windows);
  }
  // Log-space models need positive values; an empty system still counts
  // as (almost) nobody online.
  model_.observe(std::max(online_players, 1.0));
}

double Provisioner::forecast_players() const {
  CLOUDFOG_TIMED_SCOPE("provision.forecast");
  return model_.forecast_next().value_or(0.0);
}

std::size_t Provisioner::supernodes_needed(double mean_capacity) const {
  CLOUDFOG_REQUIRE(mean_capacity > 0.0, "mean capacity must be positive");
  const double n_hat = forecast_players();
  return static_cast<std::size_t>(std::ceil((1.0 + cfg_.epsilon) * n_hat / mean_capacity));
}

std::size_t Provisioner::deploy(std::vector<SupernodeState>& fleet, std::size_t wanted,
                                util::Rng& rng) const {
  CLOUDFOG_TIMED_SCOPE("provision.deploy");
  // Rank candidates by last window's supported players, descending
  // (stable on id for determinism).
  std::vector<std::size_t> ranked;
  ranked.reserve(fleet.size());
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    if (!fleet[i].failed) ranked.push_back(i);
  }
  std::stable_sort(ranked.begin(), ranked.end(), [&fleet](std::size_t a, std::size_t b) {
    return fleet[a].supported_last_window > fleet[b].supported_last_window;
  });

  for (auto& sn : fleet) sn.deployed = false;

  const std::size_t target = std::min(wanted, ranked.size());
  // Sample without replacement with rank-harmonic weights: draw from the
  // remaining candidates with P ∝ 1/rank until `target` are chosen.
  std::vector<double> weight(ranked.size());
  for (std::size_t j = 0; j < ranked.size(); ++j) weight[j] = 1.0 / static_cast<double>(j + 1);
  std::size_t deployed = 0;
  double weight_left = 0.0;
  for (double w : weight) weight_left += w;
  std::vector<bool> taken(ranked.size(), false);
  while (deployed < target) {
    double u = rng.next_double() * weight_left;
    std::size_t pick = ranked.size();
    for (std::size_t j = 0; j < ranked.size(); ++j) {
      if (taken[j]) continue;
      if (u < weight[j]) {
        pick = j;
        break;
      }
      u -= weight[j];
    }
    if (pick == ranked.size()) {
      // Numerical tail: take the first free candidate.
      for (std::size_t j = 0; j < ranked.size(); ++j) {
        if (!taken[j]) {
          pick = j;
          break;
        }
      }
    }
    taken[pick] = true;
    weight_left -= weight[pick];
    fleet[ranked[pick]].deployed = true;
    ++deployed;
  }
  return deployed;
}

}  // namespace cloudfog::core
