#include "obs/note_table.hpp"

#include <deque>
#include <map>

#include "util/annotations.hpp"

namespace cloudfog::obs {

namespace {

// std::map (not unordered) keeps lookups deterministic-friendly and the
// table is never iterated on a hot path; std::deque gives stable storage
// so note_text() views stay valid across later interning. Interning is the
// one place parallel shards may write shared state directly (it is
// idempotent and id assignment is racing-free under mu), which is why the
// table carries real capability annotations instead of shard markers.
struct NoteTable {
  util::Mutex mu;
  std::map<std::string, std::uint32_t, std::less<>> ids CF_GUARDED_BY(mu);
  std::deque<std::string> texts CF_GUARDED_BY(mu);

  NoteTable() {
    texts.emplace_back();  // index 0: the empty note
    ids.emplace(std::string{}, 0u);
  }
};

// Interned notes are immortal by design: trace sinks resolve note ids to
// text as late as the final flush in ObsSession's destructor, which can
// run after any normally-scoped static here would already be gone (the
// table is first touched lazily, so it would be torn down first). The
// leaked singleton never destructs; the pointer keeps the allocation
// reachable, so leak checkers stay quiet.
NoteTable& table() {
  static NoteTable* t = new NoteTable();
  return *t;
}

}  // namespace

NoteId intern_note(std::string_view text) {
  if (text.empty()) return NoteId{0};
  NoteTable& t = table();
  const util::MutexLock lock(t.mu);
  const auto it = t.ids.find(text);
  if (it != t.ids.end()) return NoteId{it->second};
  const auto index = static_cast<std::uint32_t>(t.texts.size());
  t.texts.emplace_back(text);
  t.ids.emplace(std::string(text), index);
  return NoteId{index};
}

std::string_view note_text(NoteId id) {
  NoteTable& t = table();
  const util::MutexLock lock(t.mu);
  if (id.index >= t.texts.size()) return {};
  return t.texts[id.index];
}

std::size_t note_count() {
  NoteTable& t = table();
  const util::MutexLock lock(t.mu);
  return t.texts.size();
}

std::string Note::text() const {
  std::string out(note_text(id));
  if (has_arg) out += std::to_string(arg);
  return out;
}

}  // namespace cloudfog::obs
