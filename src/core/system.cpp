#include "core/system.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <string>

#include "obs/obs.hpp"
#include "util/distributions.hpp"
#include "util/require.hpp"

namespace cloudfog::core {

namespace {

social::PartitionerConfig partitioner_config(const SystemConfig& cfg, int total_servers) {
  social::PartitionerConfig pc;
  pc.communities = total_servers;
  pc.max_swap_trials = cfg.partitioner_swap_trials;
  pc.max_consecutive_miss = cfg.partitioner_miss_limit;
  return pc;
}

/// Interned metric handles for the system layer; resolved once per process.
struct SystemObs {
  obs::CounterId player_joins;
  obs::CounterId player_leaves;
  obs::CounterId migrations;
  obs::CounterId supernode_failures;
  obs::CounterId cloud_rescues;
  obs::CounterId provisioning_rounds;
  obs::GaugeId online;
  obs::GaugeId deployed;
  obs::HistogramId join_ms;
  obs::HistogramId migration_ms;
  SystemObs() {
    auto& reg = obs::Recorder::global().registry();
    player_joins = reg.counter("system.player_joins");
    player_leaves = reg.counter("system.player_leaves");
    migrations = reg.counter("system.migrations");
    supernode_failures = reg.counter("system.supernode_failures");
    cloud_rescues = reg.counter("system.cloud_rescues");
    provisioning_rounds = reg.counter("system.provisioning_rounds");
    online = reg.gauge("system.online_sessions");
    deployed = reg.gauge("system.deployed_supernodes");
    join_ms = reg.histogram("system.player_join_ms", 0.0, 2000.0, 40);
    migration_ms = reg.histogram("system.migration_ms", 0.0, 2000.0, 40);
  }
};

const SystemObs& sys_obs() {
  static const SystemObs handles;
  return handles;
}

const char* arm_label(const SystemConfig& cfg) {
  switch (cfg.architecture) {
    case Architecture::kCloudDirect:
      return "cloud";
    case Architecture::kCdn:
      return "cdn";
    case Architecture::kCloudFog:
      return cfg.strategies.provisioning ? "cloudfog/A" : "cloudfog/B";
  }
  return "unknown";
}

}  // namespace

System::System(const Testbed& testbed, SystemConfig cfg, std::uint64_t seed)
    : testbed_(testbed),
      cfg_(cfg),
      rng_(util::splitmix64(seed), util::splitmix64(seed ^ 0x5e57e11aULL)),
      cloud_(testbed.make_datacenters(), testbed.latency(), net::IpLocator{}),
      fog_(cfg.fog, cloud_, testbed.latency()),
      qos_([&] {
        QosEngineConfig qc = cfg.qos;
        qc.base_jitter_ms = testbed.trace().base_jitter_ms();
        return qc;
      }(), testbed.latency(), testbed.catalog()),
      provisioner_(cfg.provisioning),
      coplay_(testbed.players().size()),
      partition_(testbed.players().size(), 0) {
  cfg_.adapter.enabled = cfg_.strategies.rate_adaptation;
  cloud_.set_candidate_mode(cfg_.discovery);

  total_servers_ = static_cast<int>(cloud_.datacenter_count()) *
                   testbed_.config().servers_per_datacenter;
  CLOUDFOG_REQUIRE(total_servers_ >= 1, "no game servers");

  // Player runtime state. Each player's private reputation store and
  // state-datacenter are fixed up front.
  players_.reserve(testbed_.players().size());
  for (const PlayerInfo& info : testbed_.players()) {
    PlayerState state;
    state.info = info;
    state.state_dc = cloud_.nearest_datacenter(info.endpoint);
    state.nearest_dc_cache = static_cast<std::int64_t>(state.state_dc);
    players_.push_back(std::move(state));
  }

  // Architecture-specific entities.
  if (cfg_.architecture == Architecture::kCloudFog) {
    fleet_ = testbed_.make_supernode_fleet(cfg_.supernode_count);
    util::Rng reg_rng = rng_.fork("sn-register");
    for (auto& sn : fleet_) cloud_.register_supernode(sn, reg_rng);

    // Designated throttlers (§4.1): stable identities whose owners may
    // limit offered bandwidth in any given cycle.
    throttle80_.assign(fleet_.size(), 0);
    throttle50_.assign(fleet_.size(), 0);
    util::Rng thr_rng = rng_.fork("throttlers");
    for (std::size_t i = 0; i < fleet_.size(); ++i) {
      if (thr_rng.chance(cfg_.throttling.fraction_throttle_80)) {
        throttle80_[i] = 1;
      } else if (thr_rng.chance(cfg_.throttling.fraction_throttle_50 /
                                std::max(1e-9, 1.0 - cfg_.throttling.fraction_throttle_80))) {
        throttle50_[i] = 1;
      }
    }

    // §3.6 extension: adversarial supernodes. The legacy MaliciousConfig
    // is a fixed-delay adversary; the translation preserves its exact
    // "malicious" fork + per-slot Bernoulli stream, so historical runs
    // replay byte-identically.
    scenario::AdversaryConfig adv = cfg_.adversary;
    if (adv.kind == scenario::AdversaryKind::kNone && cfg_.malicious.fraction > 0.0) {
      adv.kind = scenario::AdversaryKind::kFixedDelay;
      adv.fraction = cfg_.malicious.fraction;
      adv.delay_ms = cfg_.malicious.delay_ms;
    }
    if (adv.active()) {
      adversary_ =
          std::make_unique<scenario::AdversaryModel>(adv, fleet_, rng_.fork("malicious"));
    }

    if (!fleet_.empty()) {
      double cap_sum = 0.0;
      for (const auto& sn : fleet_) cap_sum += sn.capacity;
      mean_fleet_capacity_ = cap_sum / static_cast<double>(fleet_.size());
    }

    // Initial deployment: the fixed pool (CloudFog/B) or everything.
    base_deployment_ = cfg_.fixed_deployment == 0
                           ? fleet_.size()
                           : std::min(cfg_.fixed_deployment, fleet_.size());
    for (std::size_t i = 0; i < fleet_.size(); ++i) fleet_[i].deployed = i < base_deployment_;
  } else if (cfg_.architecture == Architecture::kCdn) {
    cdn_ = testbed_.make_cdn_servers(cfg_.cdn_server_count);
  }

  // Initial server placement: random; the social strategy re-partitions
  // on its weekly cadence (and once up front so day 1 benefits).
  util::Rng part_rng = rng_.fork("initial-partition");
  for (auto& server : partition_) {
    server = static_cast<social::CommunityId>(part_rng.uniform_int(0, total_servers_ - 1));
  }
  if (cfg_.strategies.social_assignment) reassign_servers(/*day=*/0, /*record_latency=*/false);

  remaining_subcycles_.assign(players_.size(), 0);

  fallback_ = fault::FallbackGovernor(cfg_.fallback);
  if (cfg_.faults.enabled && cfg_.architecture == Architecture::kCloudFog) {
    setup_fault_injection(seed);
  }
}

void System::setup_fault_injection(std::uint64_t seed) {
  fault::FaultPlanConfig pc = cfg_.faults;
  pc.supernode_count = fleet_.size();
  pc.region_count = cloud_.datacenter_count();
  if (pc.seed == 0) pc.seed = util::splitmix64(seed ^ 0xc4a05u);
  pc.seed = fault::fault_seed_from_env(pc.seed);
  // Victim selection draws from its own stream — rng_.fork would perturb
  // the shared stream and break the disabled-vs-empty-plan equivalence.
  fault_rng_ = util::Rng(util::splitmix64(pc.seed ^ util::hash64("victims")),
                         util::hash64("victims"));

  fault_state_.resize(fleet_.size(), cloud_.datacenter_count());
  for (std::size_t i = 0; i < fleet_.size(); ++i) {
    fault_state_.set_supernode_region(i, cloud_.nearest_datacenter(fleet_[i].endpoint));
  }
  fallback_.resize(players_.size());

  injector_ = std::make_unique<fault::FaultInjector>(
      fault_sim_, fault_state_, fault::FaultPlan::generate(pc),
      [this](const fault::FaultSpec& spec) { return on_crash(spec); },
      [this](const fault::FaultSpec& spec, std::size_t target) {
        on_crash_cleared(spec, target);
      });
  injector_->arm();
  qos_.set_fault_state(&fault_state_);
  fog_.set_fault_state(&fault_state_);
}

std::size_t System::on_crash(const fault::FaultSpec& spec) {
  // Resolve the victim: an explicitly-named node, else prefer a serving
  // node (a crash nobody was streaming from is a non-event), else any
  // deployed live node.
  std::size_t target = spec.target;
  if (target == fault::kAnyTarget || target >= fleet_.size()) {
    std::vector<std::size_t> serving;
    std::vector<std::size_t> idle;
    for (std::size_t i = 0; i < fleet_.size(); ++i) {
      if (!fleet_[i].deployed || fleet_[i].failed) continue;
      (fleet_[i].served > 0 ? serving : idle).push_back(i);
    }
    const auto& pool = serving.empty() ? idle : serving;
    if (pool.empty()) return fault::kAnyTarget;
    target = pool[static_cast<std::size_t>(
        fault_rng_.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
  } else if (fleet_[target].failed) {
    return fault::kAnyTarget;  // already down — an overlapping crash is moot
  }

  fleet_[target].failed = true;
  fallback_.note_fleet_change(fault_sim_.now());

  auto& rec = obs::Recorder::global();
  if (rec.enabled()) {
    rec.registry().add(sys_obs().supernode_failures);
    rec.trace(obs::EventKind::kSupernodeChurn, static_cast<std::int64_t>(target),
              static_cast<std::int64_t>(current_day_));
  }

  // Displace every session the node was serving. The restore gap charges
  // the stream as dead air, and the victim immediately rates the node with
  // zero continuity (§3.2.2: reputation must decay fast enough that a
  // flapping node drops out of candidate lists on rejoin).
  double worst_restore_ms = 0.0;
  std::uint64_t displaced = 0;
  for (std::size_t idx = 0; idx < players_.size(); ++idx) {
    PlayerState& p = players_[idx];
    if (!p.online || p.serving.kind != ServingKind::kSupernode || p.serving.index != target) {
      continue;
    }
    SupernodeState& sn = fleet_[target];
    CLOUDFOG_REQUIRE(sn.served > 0, "supernode load underflow");
    --sn.served;
    p.serving = ServingRef{};
    p.reputation.add_rating(target, 0.0, current_day_);

    util::Rng mig_rng = rng_.fork("migrate");
    const auto outcome = fog_.migrate(p, fleet_, testbed_.catalog(), current_day_,
                                      cfg_.strategies.reputation, mig_rng);
    if (!outcome.serving.attached()) {
      p.serving = ServingRef{ServingKind::kCloud, p.state_dc};
    }
    if (p.serving.kind == ServingKind::kSupernode) {
      p.rated_supernode_this_cycle = p.serving.index;
    } else if (p.serving.kind == ServingKind::kCloud) {
      fallback_.enter(idx, fault_sim_.now());
      collector_.record_fallback();
      if (rec.enabled()) {
        rec.trace(obs::EventKind::kCloudFallback, static_cast<std::int64_t>(p.info.id),
                  static_cast<std::int64_t>(target), outcome.join_latency_ms);
      }
    }
    if (p.session.has_value()) p.session->charge_outage(outcome.join_latency_ms / 1000.0);
    worst_restore_ms = std::max(worst_restore_ms, outcome.join_latency_ms);
    ++displaced;
    collector_.record_migration(outcome.join_latency_ms);
    if (rec.enabled()) {
      rec.registry().add(sys_obs().migrations);
      rec.registry().observe(sys_obs().migration_ms, outcome.join_latency_ms);
      rec.trace(obs::EventKind::kMigration, static_cast<std::int64_t>(p.info.id),
                p.serving.attached() ? static_cast<std::int64_t>(p.serving.index) : -1,
                outcome.join_latency_ms);
    }
  }
  if (displaced > 0) {
    collector_.record_interruptions(displaced);
    // MTTR of this fault: every displaced session streams again once the
    // slowest restore finishes.
    collector_.record_mttr(worst_restore_ms);
  }
  return target;
}

void System::on_crash_cleared(const fault::FaultSpec& spec, std::size_t target) {
  (void)spec;
  if (target < fleet_.size()) fleet_[target].failed = false;
  fallback_.note_fleet_change(fault_sim_.now());
}

void System::roll_daily_sessions(int day) {
  // Process players in a random order so "the game most friends are
  // playing" sees the friends already decided, as at real join time.
  std::vector<std::size_t> order(players_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  util::Rng order_rng = rng_.fork("roll-order");
  std::shuffle(order.begin(), order.end(), order_rng);

  util::Rng roll_rng = rng_.fork("roll");
  std::vector<char> decided(players_.size(), 0);
  for (std::size_t idx : order) {
    PlayerState& p = players_[idx];
    p.today = game::roll_daily_session(testbed_.activity(), p.info.duration_class, roll_rng);
    // "Players tend to play with their friends" (§3.4 / [2]): with even
    // odds, start when a friend who already planned today starts, so
    // friends are online together.
    std::vector<std::size_t> decided_friends;
    for (social::PlayerId f : testbed_.social_graph().friends(idx)) {
      if (decided[f]) decided_friends.push_back(f);
    }
    if (!decided_friends.empty() && roll_rng.chance(0.5)) {
      const std::size_t buddy = decided_friends[static_cast<std::size_t>(roll_rng.uniform_int(
          0, static_cast<std::int64_t>(decided_friends.size()) - 1))];
      p.today.start_subcycle = players_[buddy].today.start_subcycle;
    }
    std::vector<game::GameId> friend_games;
    for (std::size_t f : decided_friends) {
      if (players_[f].today.online_at(p.today.start_subcycle)) {
        friend_games.push_back(players_[f].game);
      }
    }
    p.game = testbed_.activity().choose_game(testbed_.catalog(), friend_games, roll_rng);
    decided[idx] = 1;
  }
  (void)day;
}

void System::apply_throttling(int day) {
  util::Rng thr_rng = rng_.fork("throttle-day");
  for (std::size_t i = 0; i < fleet_.size(); ++i) {
    double willingness = 1.0;
    if (throttle80_[i] && thr_rng.chance(cfg_.throttling.throttle_probability)) {
      willingness = 0.8;
    } else if (throttle50_[i] && thr_rng.chance(cfg_.throttling.throttle_probability)) {
      willingness = 0.5;
    }
    fleet_[i].willingness = willingness;
  }
  (void)day;
}

void System::begin_cycle(int day) {
  if (cfg_.workload == WorkloadMode::kDailySessions) roll_daily_sessions(day);
  if (cfg_.architecture == Architecture::kCloudFog) apply_throttling(day);
  if (adversary_ != nullptr) adversary_->begin_cycle(day, fleet_, players_);

  // Weekly social reassignment (§3.4 "runs periodically (e.g., weekly)").
  if (cfg_.strategies.social_assignment && day > 1 &&
      (day - 1) % cfg_.reassign_period_days == 0) {
    reassign_servers(day, /*record_latency=*/true);
  }
}

void System::attach_player(PlayerState& p, int day) {
  double join_ms = 0.0;
  switch (cfg_.architecture) {
    case Architecture::kCloudDirect: {
      p.serving = ServingRef{ServingKind::kCloud, p.state_dc};
      join_ms = testbed_.latency().rtt_ms(p.info.endpoint,
                                          cloud_.datacenter(p.state_dc).endpoint) +
                cfg_.fog.connect_setup_ms;
      collector_.record_player_join(join_ms);
      break;
    }
    case Architecture::kCdn: {
      // Nearest accepting CDN server within the RTT bound, else the cloud.
      std::size_t best = cdn_.size();
      double best_rtt = cfg_.cdn_max_rtt_ms;
      for (std::size_t i = 0; i < cdn_.size(); ++i) {
        if (!cdn_[i].accepting()) continue;
        const double rtt = testbed_.latency().rtt_ms(p.info.endpoint, cdn_[i].endpoint);
        if (rtt <= best_rtt) {
          best_rtt = rtt;
          best = i;
        }
      }
      if (best < cdn_.size()) {
        ++cdn_[best].served;
        p.serving = ServingRef{ServingKind::kCdn, best};
        join_ms = best_rtt + cfg_.fog.connect_setup_ms;
      } else {
        p.serving = ServingRef{ServingKind::kCloud, p.state_dc};
        join_ms =
            testbed_.latency().rtt_ms(p.info.endpoint, cloud_.datacenter(p.state_dc).endpoint) +
            cfg_.fog.connect_setup_ms;
      }
      collector_.record_player_join(join_ms);
      break;
    }
    case Architecture::kCloudFog: {
      util::Rng sel_rng = rng_.fork("select");
      const auto outcome = fog_.select_supernode(p, fleet_, testbed_.catalog(), day,
                                                 cfg_.strategies.reputation, sel_rng);
      join_ms = outcome.join_latency_ms;
      collector_.record_player_join(join_ms);
      if (p.serving.kind == ServingKind::kSupernode) {
        p.rated_supernode_this_cycle = p.serving.index;
      }
      break;
    }
  }

  auto& rec = obs::Recorder::global();
  if (rec.enabled()) {
    rec.registry().add(sys_obs().player_joins);
    rec.registry().observe(sys_obs().join_ms, join_ms);
    rec.trace(obs::EventKind::kPlayerJoin, static_cast<std::int64_t>(p.info.id),
              p.serving.attached() ? static_cast<std::int64_t>(p.serving.index) : -1, join_ms);
  }

  p.session.emplace(testbed_.catalog(), p.game, cfg_.adapter, rng_.fork("adapter"));
  p.online = true;
}

void System::detach_player(PlayerState& p) {
  if (p.serving.kind == ServingKind::kCdn) {
    auto& edge = cdn_[p.serving.index];
    CLOUDFOG_REQUIRE(edge.served > 0, "CDN load underflow");
    --edge.served;
    p.serving = ServingRef{};
  } else {
    fog_.release(p, fleet_);
  }
  p.session.reset();
  p.online = false;
  fallback_.exit(static_cast<std::size_t>(&p - players_.data()));

  auto& rec = obs::Recorder::global();
  if (rec.enabled()) {
    rec.registry().add(sys_obs().player_leaves);
    rec.trace(obs::EventKind::kPlayerLeave, static_cast<std::int64_t>(p.info.id));
  }
}

void System::process_population(int day, int subcycle, bool peak) {
  if (cfg_.workload == WorkloadMode::kDailySessions) {
    for (auto& p : players_) {
      const bool should_be_online = p.today.online_at(
          subcycle, testbed_.activity().config().subcycles_per_day);
      if (should_be_online && !p.online) {
        attach_player(p, day);
      } else if (!should_be_online && p.online) {
        detach_player(p);
      } else if (p.online) {
        retry_cloud_fallback(p, day);
      }
    }
    return;
  }

  // Arrival-rate workload (§4.3.4): Poisson arrivals over the hour at the
  // peak or off-peak rate; departures when the sampled stay runs out.
  for (std::size_t i = 0; i < players_.size(); ++i) {
    PlayerState& p = players_[i];
    if (!p.online) continue;
    if (--remaining_subcycles_[i] <= 0) {
      detach_player(p);
      continue;
    }
    // Fault-layer runs keep the §3.2.2 hourly probing: fallback sessions
    // look for a fog return exactly like the daily workload does. Gated on
    // the injector so fault-free arrival runs (Figs. 13–15) stay
    // byte-identical to the pre-scenario-engine stream.
    if (injector_ != nullptr) retry_cloud_fallback(p, day);
  }

  const double rate_per_min = arrival_rate_override_.value_or(
      peak ? cfg_.arrivals.peak_per_minute : cfg_.arrivals.offpeak_per_minute);
  util::Rng arr_rng = rng_.fork("arrivals");
  int arrivals = util::sample_poisson(arr_rng, rate_per_min * 60.0);

  // Fill from the offline population in a rotating scan.
  util::Rng pick_rng = rng_.fork("arrival-pick");
  std::size_t scan = static_cast<std::size_t>(
      pick_rng.uniform_int(0, static_cast<std::int64_t>(players_.size()) - 1));
  for (std::size_t tried = 0; tried < players_.size() && arrivals > 0; ++tried) {
    const std::size_t idx = scan;
    scan = (scan + 1) % players_.size();
    PlayerState& p = players_[idx];
    if (p.online) continue;
    util::Rng roll_rng = rng_.fork("arrival-roll");
    p.game = game_mix_.empty()
                 ? testbed_.activity().choose_game(testbed_.catalog(), {}, roll_rng)
                 : choose_game_from_mix(roll_rng);
    const double hours =
        testbed_.activity().sample_play_hours(p.info.duration_class, roll_rng);
    remaining_subcycles_[idx] = std::max(1, static_cast<int>(std::ceil(hours)));
    attach_player(p, day);
    --arrivals;
  }
}

game::GameId System::choose_game_from_mix(util::Rng& rng) const {
  // Cumulative draw over the scenario's weights; indices past the weight
  // list (or with non-positive weight) are never chosen.
  const std::size_t games =
      std::min(game_mix_.size(), testbed_.catalog().size());
  double total = 0.0;
  for (std::size_t g = 0; g < games; ++g) total += std::max(0.0, game_mix_[g]);
  CLOUDFOG_REQUIRE(total > 0.0, "game mix has no positive weight");
  double u = rng.next_double() * total;
  for (std::size_t g = 0; g < games; ++g) {
    u -= std::max(0.0, game_mix_[g]);
    if (u < 0.0) return static_cast<game::GameId>(g);
  }
  return static_cast<game::GameId>(games - 1);
}

std::size_t System::force_departures(double fraction) {
  if (fraction <= 0.0) return 0;
  util::Rng dep_rng = rng_.fork("storm-departures");
  std::size_t departed = 0;
  for (std::size_t i = 0; i < players_.size(); ++i) {
    PlayerState& p = players_[i];
    if (!p.online || !dep_rng.chance(fraction)) continue;
    remaining_subcycles_[i] = 0;
    detach_player(p);
    ++departed;
  }
  return departed;
}

std::size_t System::drain_sessions() {
  std::size_t drained = 0;
  for (std::size_t i = 0; i < players_.size(); ++i) {
    PlayerState& p = players_[i];
    if (!p.online) continue;
    remaining_subcycles_[i] = 0;
    detach_player(p);
    ++drained;
  }
  return drained;
}

void System::retry_cloud_fallback(PlayerState& p, int day) {
  // A player streaming from the cloud keeps looking for a supernode
  // (seats free up as others leave); §3.2.2's periodic probing makes the
  // check hourly. Join latency is not re-recorded — this is a background
  // improvement, not a join.
  if (cfg_.architecture != Architecture::kCloudFog) return;
  if (p.serving.kind != ServingKind::kCloud) return;
  const auto idx = static_cast<std::size_t>(&p - players_.data());
  // Hysteresis: a fault-driven fallback session stays on the cloud until
  // its residency and the fleet-stability window both elapse — the hourly
  // retry otherwise bounces it straight back into a churning fleet.
  if (injector_ != nullptr && fallback_.blocked(idx, fault_sim_.now())) return;
  util::Rng retry_rng = rng_.fork("retry");
  const auto outcome = fog_.select_supernode(p, fleet_, testbed_.catalog(), day,
                                             cfg_.strategies.reputation, retry_rng);
  if (outcome.serving.kind == ServingKind::kSupernode) {
    p.rated_supernode_this_cycle = outcome.serving.index;
    auto& rec = obs::Recorder::global();
    if (rec.enabled()) rec.registry().add(sys_obs().cloud_rescues);
    if (fallback_.in_fallback(idx)) {
      fallback_.exit(idx);
      collector_.record_fog_return();
      if (rec.enabled()) {
        rec.trace(obs::EventKind::kFogReturn, static_cast<std::int64_t>(p.info.id),
                  static_cast<std::int64_t>(outcome.serving.index));
      }
    }
  }
  // select_supernode re-attaches to the cloud itself on failure.
}

void System::update_cross_server_latency() {
  const double stranger_cross = 1.0 - 1.0 / static_cast<double>(total_servers_);
  const double w_f = cfg_.friend_interaction_weight;
  for (std::size_t i = 0; i < players_.size(); ++i) {
    PlayerState& p = players_[i];
    if (!p.online) continue;
    int online_friends = 0;
    int cross_friends = 0;
    for (social::PlayerId f : testbed_.social_graph().friends(i)) {
      if (!players_[f].online) continue;
      ++online_friends;
      if (partition_[f] != partition_[i]) ++cross_friends;
    }
    const double friend_cross =
        online_friends == 0
            ? stranger_cross
            : static_cast<double>(cross_friends) / static_cast<double>(online_friends);
    p.cross_server_ms = cfg_.cross_server_penalty_ms *
                        (w_f * friend_cross + (1.0 - w_f) * stranger_cross);
  }
}

void System::maybe_run_provisioning(int day, int subcycle) {
  if (!cfg_.strategies.provisioning || cfg_.architecture != Architecture::kCloudFog) return;

  std::size_t online = 0;
  for (const auto& p : players_) {
    if (p.online) ++online;
  }
  window_online_sum_ += static_cast<double>(online);
  ++window_subcycles_;

  const int window = cfg_.provisioning.window_hours;
  const int global_subcycle =
      (day - 1) * testbed_.activity().config().subcycles_per_day + (subcycle - 1);
  if ((global_subcycle + 1) % window != 0) return;

  CLOUDFOG_TIMED_SCOPE("provisioning");

  // Window closed: feed the mean online population, refresh supernode
  // popularity ranks, and redeploy for the forecast next window.
  provisioner_.observe_window(window_online_sum_ / std::max(1, window_subcycles_));
  window_online_sum_ = 0.0;
  window_subcycles_ = 0;

  for (auto& sn : fleet_) {
    sn.supported_last_window = sn.served;
  }

  const std::size_t wanted =
      std::max(provisioner_.supernodes_needed(mean_fleet_capacity_), base_deployment_);
  util::Rng deploy_rng = rng_.fork("deploy");
  provisioner_.deploy(fleet_, wanted, deploy_rng);
  migrate_players_off_undeployed(day);

  auto& rec = obs::Recorder::global();
  if (rec.enabled()) {
    std::size_t deployed_count = 0;
    for (const auto& sn : fleet_) {
      if (sn.deployed) ++deployed_count;
    }
    rec.registry().add(sys_obs().provisioning_rounds);
    rec.registry().set(sys_obs().deployed, static_cast<double>(deployed_count));
    static const obs::NoteId kWantedNote = obs::intern_note("wanted=");
    rec.trace(obs::EventKind::kProvisioning, day, subcycle,
              static_cast<double>(deployed_count),
              obs::Note{kWantedNote, static_cast<std::int64_t>(wanted)});
  }
}

void System::migrate_players_off_undeployed(int day) {
  for (auto& p : players_) {
    if (!p.online || p.serving.kind != ServingKind::kSupernode) continue;
    SupernodeState& sn = fleet_[p.serving.index];
    if (sn.deployed) continue;
    // The provider withdrew this supernode; its players re-select without
    // restarting the game (silent migration, not a failure).
    fog_.release(p, fleet_);
    util::Rng sel_rng = rng_.fork("reprov-select");
    fog_.select_supernode(p, fleet_, testbed_.catalog(), day, cfg_.strategies.reputation,
                          sel_rng);
    if (p.serving.kind == ServingKind::kSupernode) {
      p.rated_supernode_this_cycle = p.serving.index;
    }
    auto& rec = obs::Recorder::global();
    if (rec.enabled()) {
      rec.registry().add(sys_obs().migrations);
      rec.trace(obs::EventKind::kMigration, static_cast<std::int64_t>(p.info.id),
                p.serving.attached() ? static_cast<std::int64_t>(p.serving.index) : -1);
    }
  }
}

SubcycleQos System::run_subcycle(int day, int subcycle, bool warmup, bool peak) {
  auto& rec = obs::Recorder::global();
  const int per_day = testbed_.activity().config().subcycles_per_day;
  if (rec.enabled()) {
    rec.set_sim_time(((day - 1) * per_day + (subcycle - 1)) * 3600.0);
  }
  current_day_ = day;
  if (injector_ != nullptr) {
    // Fire every fault scheduled inside this subcycle's hour before the
    // population and QoS passes see the world.
    fault_sim_.run_until(((day - 1) * per_day + subcycle) * 3600.0);
  }
  {
    CLOUDFOG_TIMED_SCOPE("population");
    process_population(day, subcycle, peak);
  }
  maybe_run_provisioning(day, subcycle);
  {
    CLOUDFOG_TIMED_SCOPE("social.cross_server");
    update_cross_server_latency();
  }
  const SubcycleQos qos = qos_.run_subcycle(players_, fleet_, cloud_, cdn_);
  collector_.record_subcycle(qos, warmup);
  if (injector_ != nullptr && !warmup && qos.online_sessions > 0) {
    collector_.record_fallback_residency(static_cast<double>(fallback_.active_count()) /
                                         static_cast<double>(qos.online_sessions));
  }
  if (rec.enabled()) {
    rec.registry().set(sys_obs().online, static_cast<double>(qos.online_sessions));
    rec.trace(obs::EventKind::kSubcycle, day, subcycle,
              static_cast<double>(qos.online_sessions));
  }
  return qos;
}

void System::end_cycle(int day) {
  // Ratings (§4.1): each player rates the supernode that served it with
  // the playback continuity it experienced this cycle.
  for (auto& p : players_) {
    if (p.rated_supernode_this_cycle.has_value() && p.cycle_continuity_samples > 0.0) {
      const double continuity =
          std::clamp(p.cycle_continuity_sum / p.cycle_continuity_samples, 0.0, 1.0);
      p.reputation.add_rating(*p.rated_supernode_this_cycle, continuity, day);
    }
    p.cycle_continuity_sum = 0.0;
    p.cycle_continuity_samples = 0.0;
    p.rated_supernode_this_cycle.reset();
    // Daily-session players leave at day end (each cycle is one day).
    if (cfg_.workload == WorkloadMode::kDailySessions && p.online) detach_player(p);
  }

  // Co-play bookkeeping for implicit friendships: friend pairs online on
  // the same day playing the same game count as playing together.
  for (const auto& [a, b] : testbed_.social_graph().edges()) {
    const PlayerState& pa = players_[a];
    const PlayerState& pb = players_[b];
    if (cfg_.workload != WorkloadMode::kDailySessions) continue;
    const bool played_together =
        pa.game == pb.game &&
        pa.today.start_subcycle < pb.today.start_subcycle + static_cast<int>(std::ceil(pb.today.hours)) &&
        pb.today.start_subcycle < pa.today.start_subcycle + static_cast<int>(std::ceil(pa.today.hours));
    if (played_together) coplay_.record_coplay(a, b, day);
  }
  coplay_.expire(day);
}

const RunMetrics& System::run(const sim::CycleConfig& cycles) {
  auto& rec = obs::Recorder::global();
  const char* label = arm_label(cfg_);
  if (rec.enabled()) rec.begin_run(label);
  for (int day = 1; day <= cycles.total_cycles; ++day) {
    const bool warmup = day <= cycles.warmup_cycles;
    begin_cycle(day);
    for (int sub = 1; sub <= cycles.subcycles_per_cycle; ++sub) {
      const bool peak = sub >= cycles.peak_start_subcycle && sub <= cycles.peak_end_subcycle;
      run_subcycle(day, sub, warmup, peak);
    }
    end_cycle(day);
  }
  if (rec.enabled()) {
    rec.add_run_summary(
        summarize_run(collector_.metrics(), label, collector_.recorded_subcycles()));
  }
  return collector_.metrics();
}

std::vector<double> System::inject_supernode_failures(std::size_t count, int day) {
  CLOUDFOG_REQUIRE(cfg_.architecture == Architecture::kCloudFog,
                   "failure injection needs a fog");
  // Fail `count` random deployed supernodes that are currently serving.
  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i < fleet_.size(); ++i) {
    if (fleet_[i].deployed && !fleet_[i].failed && fleet_[i].served > 0) candidates.push_back(i);
  }
  util::Rng fail_rng = rng_.fork("failures");
  std::shuffle(candidates.begin(), candidates.end(), fail_rng);
  candidates.resize(std::min(count, candidates.size()));
  auto& rec = obs::Recorder::global();
  for (std::size_t idx : candidates) {
    fleet_[idx].failed = true;
    if (rec.enabled()) {
      rec.registry().add(sys_obs().supernode_failures);
      rec.trace(obs::EventKind::kSupernodeChurn, static_cast<std::int64_t>(idx),
                static_cast<std::int64_t>(day));
    }
  }

  std::vector<double> migration_latencies;
  for (auto& p : players_) {
    if (!p.online || p.serving.kind != ServingKind::kSupernode) continue;
    SupernodeState& failed_sn = fleet_[p.serving.index];
    if (!failed_sn.failed) continue;
    // The seat is gone with the failure.
    CLOUDFOG_REQUIRE(failed_sn.served > 0, "supernode load underflow");
    --failed_sn.served;
    p.serving = ServingRef{};
    util::Rng mig_rng = rng_.fork("migrate");
    const auto outcome = fog_.migrate(p, fleet_, testbed_.catalog(), day,
                                      cfg_.strategies.reputation, mig_rng);
    if (!outcome.serving.attached()) {
      p.serving = ServingRef{ServingKind::kCloud, p.state_dc};
    }
    if (p.serving.kind == ServingKind::kSupernode) {
      p.rated_supernode_this_cycle = p.serving.index;
    }
    migration_latencies.push_back(outcome.join_latency_ms);
    collector_.record_migration(outcome.join_latency_ms);
    if (rec.enabled()) {
      rec.registry().add(sys_obs().migrations);
      rec.registry().observe(sys_obs().migration_ms, outcome.join_latency_ms);
      rec.trace(obs::EventKind::kMigration, static_cast<std::int64_t>(p.info.id),
                p.serving.attached() ? static_cast<std::int64_t>(p.serving.index) : -1,
                outcome.join_latency_ms);
    }
  }
  return migration_latencies;
}

void System::recover_supernodes() {
  for (auto& sn : fleet_) sn.failed = false;
}

double System::measure_server_assignment_seconds() {
  const auto merged = coplay_.merged_with(testbed_.social_graph());
  const social::CommunityPartitioner partitioner(partitioner_config(cfg_, total_servers_));
  util::Rng part_rng = rng_.fork("measure-partition");
  const auto start = std::chrono::steady_clock::now();
  auto result = partitioner.partition(merged, part_rng);
  const auto stop = std::chrono::steady_clock::now();
  partition_ = std::move(result.partition);
  const double seconds = std::chrono::duration<double>(stop - start).count();
  collector_.record_server_assignment(seconds);
  return seconds;
}

void System::reassign_servers(int day, bool record_latency) {
  (void)day;
  if (record_latency) {
    measure_server_assignment_seconds();
    return;
  }
  const auto merged = coplay_.merged_with(testbed_.social_graph());
  const social::CommunityPartitioner partitioner(partitioner_config(cfg_, total_servers_));
  util::Rng part_rng = rng_.fork("partition");
  partition_ = partitioner.partition(merged, part_rng).partition;
}

std::vector<double> System::supernode_join_latencies() const {
  std::vector<double> out;
  out.reserve(fleet_.size());
  for (const auto& sn : fleet_) out.push_back(fog_.supernode_join_latency_ms(sn));
  return out;
}

double System::coverage(double network_latency_req_ms) const {
  std::size_t covered = 0;
  for (const auto& p : players_) {
    double best_rtt = std::numeric_limits<double>::infinity();
    for (const auto& dc : cloud_.datacenters()) {
      best_rtt = std::min(best_rtt, testbed_.latency().rtt_ms(p.info.endpoint, dc.endpoint));
    }
    if (cfg_.architecture == Architecture::kCloudFog) {
      for (const auto& sn : fleet_) {
        if (!sn.deployed || sn.failed) continue;
        best_rtt = std::min(best_rtt, testbed_.latency().rtt_ms(p.info.endpoint, sn.endpoint));
      }
    } else if (cfg_.architecture == Architecture::kCdn) {
      for (const auto& edge : cdn_) {
        best_rtt = std::min(best_rtt, testbed_.latency().rtt_ms(p.info.endpoint, edge.endpoint));
      }
    }
    if (best_rtt <= network_latency_req_ms) ++covered;
  }
  return players_.empty() ? 0.0
                          : static_cast<double>(covered) / static_cast<double>(players_.size());
}

}  // namespace cloudfog::core
