file(REMOVE_RECURSE
  "libcloudfog_forecast.a"
)
