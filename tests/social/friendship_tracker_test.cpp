#include "social/friendship_tracker.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace cloudfog::social {
namespace {

TEST(FriendshipTracker, CountsCoplays) {
  FriendshipTracker t(10, /*threshold=*/2);
  t.record_coplay(1, 2, 1);
  t.record_coplay(2, 1, 1);  // order-insensitive
  t.record_coplay(1, 2, 2);
  EXPECT_EQ(t.coplay_count(1, 2), 3);
  EXPECT_EQ(t.coplay_count(2, 1), 3);
}

TEST(FriendshipTracker, ThresholdIsStrict) {
  FriendshipTracker t(10, /*threshold=*/3);
  for (int i = 0; i < 3; ++i) t.record_coplay(0, 1, 1);
  EXPECT_FALSE(t.implicit_friends(0, 1));  // CP must EXCEED υ
  t.record_coplay(0, 1, 2);
  EXPECT_TRUE(t.implicit_friends(0, 1));
}

TEST(FriendshipTracker, SelfPlayIgnored) {
  FriendshipTracker t(10);
  t.record_coplay(3, 3, 1);
  EXPECT_EQ(t.coplay_count(3, 3), 0);
}

TEST(FriendshipTracker, ExpiryDropsOldDays) {
  FriendshipTracker t(10, /*threshold=*/0, /*window_days=*/7);
  t.record_coplay(0, 1, 1);
  t.record_coplay(0, 1, 5);
  t.expire(8);  // keeps days >= 2
  EXPECT_EQ(t.coplay_count(0, 1), 1);
  t.expire(30);
  EXPECT_EQ(t.coplay_count(0, 1), 0);
}

TEST(FriendshipTracker, ImplicitPairsEnumerated) {
  FriendshipTracker t(10, /*threshold=*/1);
  t.record_coplay(0, 1, 1);
  t.record_coplay(0, 1, 2);
  t.record_coplay(2, 3, 1);  // only once — below threshold
  const auto pairs = t.implicit_friend_pairs();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], (std::pair<PlayerId, PlayerId>{0, 1}));
}

TEST(FriendshipTracker, MergedWithAddsImplicitEdges) {
  SocialGraph base(5);
  base.add_friendship(0, 4);
  FriendshipTracker t(5, /*threshold=*/0);
  t.record_coplay(1, 2, 1);
  const SocialGraph merged = t.merged_with(base);
  EXPECT_TRUE(merged.are_friends(0, 4));  // explicit preserved
  EXPECT_TRUE(merged.are_friends(1, 2));  // implicit added
  EXPECT_EQ(merged.edge_count(), 2u);
}

TEST(FriendshipTracker, MergedWithDeduplicates) {
  SocialGraph base(5);
  base.add_friendship(1, 2);
  FriendshipTracker t(5, /*threshold=*/0);
  t.record_coplay(1, 2, 1);  // same pair implicitly
  const SocialGraph merged = t.merged_with(base);
  EXPECT_EQ(merged.edge_count(), 1u);
}

TEST(FriendshipTracker, SizeMismatchThrows) {
  const SocialGraph base(4);
  const FriendshipTracker t(5);
  EXPECT_THROW(t.merged_with(base), cloudfog::ConfigError);
}

TEST(FriendshipTracker, OutOfRangeThrows) {
  FriendshipTracker t(3);
  EXPECT_THROW(t.record_coplay(0, 3, 1), cloudfog::ConfigError);
  EXPECT_THROW(t.record_coplay(0, 1, 0), cloudfog::ConfigError);
}

}  // namespace
}  // namespace cloudfog::social
