#include "scenario/scenario_engine.hpp"

#include <gtest/gtest.h>

#include "scenario/scenario_spec.hpp"

namespace cloudfog::scenario {
namespace {

/// A population small enough that every test runs in well under a second.
ScenarioSpec small_spec() {
  ScenarioSpec spec;
  spec.name = "unit";
  spec.players = 1200;
  spec.supernodes = 80;
  spec.cycles = 2;
  spec.warmup = 1;
  spec.seed = 42;
  spec.base_arrival_per_minute = 6.0;
  return spec;
}

TEST(ScenarioEngine, SameSpecReplaysIdentically) {
  // The determinism contract: same spec + same seed => the same numbers,
  // exactly. Cover the fault and adversary rng streams too.
  ScenarioSpec spec = small_spec();
  spec.adversary.kind = AdversaryKind::kOnOff;
  spec.adversary.fraction = 0.2;
  spec.outage.emplace();
  spec.outage->start_hour = 26;
  spec.outage->duration_hours = 3;
  spec.outage->box = fault::GeoBox{0.0, 0.0, 2000.0, 1400.0};

  const ScenarioOutcome a = ScenarioEngine(spec).run();
  const ScenarioOutcome b = ScenarioEngine(spec).run();
  ASSERT_EQ(a.metrics.size(), b.metrics.size());
  for (std::size_t i = 0; i < a.metrics.size(); ++i) {
    EXPECT_EQ(a.metrics[i].name, b.metrics[i].name);
    EXPECT_EQ(a.metrics[i].value, b.metrics[i].value) << a.metrics[i].name;
  }
  EXPECT_EQ(a.passed, b.passed);
}

TEST(ScenarioEngine, FlashCrowdRaisesTheOnlinePopulation) {
  const ScenarioOutcome base = ScenarioEngine(small_spec()).run();

  ScenarioSpec spec = small_spec();
  spec.flash_crowd.emplace();
  spec.flash_crowd->start_hour = 25;  // inside the single measured cycle
  spec.flash_crowd->ramp_hours = 2;
  spec.flash_crowd->plateau_hours = 4;
  spec.flash_crowd->decay_hours = 4;
  spec.flash_crowd->peak_per_minute = 40.0;
  const ScenarioOutcome crowd = ScenarioEngine(spec).run();

  EXPECT_GT(crowd.metric("joins"), base.metric("joins"));
  EXPECT_GT(crowd.metric("online_mean"), base.metric("online_mean"));
}

TEST(ScenarioEngine, ChurnStormDrainsThePopulation) {
  const ScenarioOutcome base = ScenarioEngine(small_spec()).run();

  ScenarioSpec spec = small_spec();
  spec.churn_storm.emplace();
  spec.churn_storm->start_hour = 26;
  spec.churn_storm->duration_hours = 6;
  spec.churn_storm->departure_fraction = 0.8;
  spec.churn_storm->pause_arrivals = true;
  const ScenarioOutcome storm = ScenarioEngine(spec).run();

  EXPECT_LT(storm.metric("online_mean"), base.metric("online_mean"));
  // Paused arrivals mean fewer joins over the same horizon.
  EXPECT_LT(storm.metric("joins"), base.metric("joins"));
}

TEST(ScenarioEngine, RegionalOutageInterruptsSessions) {
  ScenarioSpec spec = small_spec();
  spec.base_arrival_per_minute = 10.0;
  spec.outage.emplace();
  spec.outage->start_hour = 26;
  spec.outage->duration_hours = 3;
  spec.outage->box = fault::GeoBox{0.0, 0.0, 2000.0, 1400.0};
  spec.outage->crash_fraction = 0.7;
  const ScenarioOutcome out = ScenarioEngine(spec).run();

  EXPECT_GT(out.metric("interrupted"), 0.0);
  EXPECT_GT(out.metric("migration_storm"), 0.0);
  // The base run is fault-free, so every interruption above came from the
  // compiled outage specs.
  const ScenarioOutcome base = ScenarioEngine(small_spec()).run();
  EXPECT_EQ(base.metric("interrupted"), 0.0);
  EXPECT_EQ(base.metric("fallbacks"), 0.0);
}

TEST(ScenarioEngine, EnvelopeVerdictGatesTheOutcome) {
  ScenarioSpec good = small_spec();
  good.envelope.require_min("continuity", 0.0);
  good.envelope.require_max("latency_ms", 10000.0);
  const ScenarioOutcome pass = ScenarioEngine(good).run();
  EXPECT_TRUE(pass.passed);
  EXPECT_GT(pass.envelope.min_margin, 0.0);

  ScenarioSpec bad = small_spec();
  bad.envelope.require_min("continuity", 2.0);  // continuity can never exceed 1
  const ScenarioOutcome fail = ScenarioEngine(bad).run();
  EXPECT_FALSE(fail.passed);
  EXPECT_LT(fail.envelope.min_margin, 0.0);
}

TEST(ScenarioEngine, SmokeClampAndOverrides) {
  ScenarioSpec spec = small_spec();
  spec.players = 50000;
  spec.cycles = 10;
  spec.warmup = 8;
  spec.system_seed = 99;

  ScenarioRunOptions opts;
  opts.smoke = true;
  opts.reputation_override = false;
  opts.seed_override = 7;
  const ScenarioEngine engine(spec, opts);
  EXPECT_EQ(engine.spec().players, 4000u);
  EXPECT_EQ(engine.spec().cycles, 4);
  EXPECT_EQ(engine.spec().warmup, 3);
  EXPECT_FALSE(engine.spec().reputation);
  EXPECT_EQ(engine.spec().seed, 7u);
  EXPECT_EQ(engine.spec().system_seed, 0u);  // override re-roots both seeds
}

TEST(ScenarioEngine, OutcomeMetricLookup) {
  ScenarioOutcome outcome;
  outcome.metrics = {{"continuity", 0.9}, {"latency_ms", 80.0}};
  EXPECT_EQ(outcome.metric("continuity"), 0.9);
  EXPECT_EQ(outcome.metric("latency_ms"), 80.0);
  EXPECT_EQ(outcome.metric("not_there"), 0.0);
}

TEST(ScenarioEngine, EnvelopeTableListsEveryBound) {
  ScenarioSpec spec = small_spec();
  spec.envelope.require_min("continuity", 0.1);
  spec.envelope.require_max("latency_ms", 1000.0);
  const ScenarioOutcome out = ScenarioEngine(spec).run();
  const util::Table table = envelope_table(out);
  EXPECT_EQ(table.row_count(), 2u);
}

}  // namespace
}  // namespace cloudfog::scenario
