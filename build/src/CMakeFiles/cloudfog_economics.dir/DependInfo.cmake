
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/economics/contributor_market.cpp" "src/CMakeFiles/cloudfog_economics.dir/economics/contributor_market.cpp.o" "gcc" "src/CMakeFiles/cloudfog_economics.dir/economics/contributor_market.cpp.o.d"
  "/root/repo/src/economics/cost_model.cpp" "src/CMakeFiles/cloudfog_economics.dir/economics/cost_model.cpp.o" "gcc" "src/CMakeFiles/cloudfog_economics.dir/economics/cost_model.cpp.o.d"
  "/root/repo/src/economics/incentives.cpp" "src/CMakeFiles/cloudfog_economics.dir/economics/incentives.cpp.o" "gcc" "src/CMakeFiles/cloudfog_economics.dir/economics/incentives.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cloudfog_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
