
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/world/kdtree_partition.cpp" "src/CMakeFiles/cloudfog_world.dir/world/kdtree_partition.cpp.o" "gcc" "src/CMakeFiles/cloudfog_world.dir/world/kdtree_partition.cpp.o.d"
  "/root/repo/src/world/state_engine.cpp" "src/CMakeFiles/cloudfog_world.dir/world/state_engine.cpp.o" "gcc" "src/CMakeFiles/cloudfog_world.dir/world/state_engine.cpp.o.d"
  "/root/repo/src/world/virtual_world.cpp" "src/CMakeFiles/cloudfog_world.dir/world/virtual_world.cpp.o" "gcc" "src/CMakeFiles/cloudfog_world.dir/world/virtual_world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cloudfog_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
