#include "util/cli.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace cloudfog::util {
namespace {

CliArgs parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, ProgramAndPositionals) {
  const auto args = parse({"coverage", "extra"});
  EXPECT_EQ(args.program(), "prog");
  EXPECT_EQ(args.positional(), (std::vector<std::string>{"coverage", "extra"}));
}

TEST(Cli, SpaceSeparatedValue) {
  const auto args = parse({"--players", "5000"});
  EXPECT_EQ(args.get_int("players", 0), 5000);
}

TEST(Cli, EqualsSeparatedValue) {
  const auto args = parse({"--players=123"});
  EXPECT_EQ(args.get_int("players", 0), 123);
}

TEST(Cli, BareFlagIsBooleanTrue) {
  const auto args = parse({"--csv"});
  EXPECT_TRUE(args.get_bool("csv"));
  EXPECT_FALSE(args.get_bool("paper"));
}

TEST(Cli, ExplicitBooleanValues) {
  EXPECT_TRUE(parse({"--x", "yes"}).get_bool("x"));
  EXPECT_FALSE(parse({"--x=off"}).get_bool("x"));
  EXPECT_THROW(parse({"--x", "maybe"}).get_bool("x"), ConfigError);
}

TEST(Cli, FlagFollowedByFlagStaysBoolean) {
  const auto args = parse({"--csv", "--players", "10"});
  EXPECT_TRUE(args.get_bool("csv"));
  EXPECT_EQ(args.get_int("players", 0), 10);
}

TEST(Cli, NegativeNumbersAreValues) {
  const auto args = parse({"--offset", "-5"});
  EXPECT_EQ(args.get_int("offset", 0), -5);
}

TEST(Cli, DefaultsWhenAbsent) {
  const auto args = parse({});
  EXPECT_EQ(args.get_string("profile", "peersim"), "peersim");
  EXPECT_EQ(args.get_int("seed", 42), 42);
  EXPECT_DOUBLE_EQ(args.get_double("rate", 2.5), 2.5);
}

TEST(Cli, LastOccurrenceWins) {
  const auto args = parse({"--seed", "1", "--seed", "2"});
  EXPECT_EQ(args.get_int("seed", 0), 2);
}

TEST(Cli, TypedParseErrors) {
  EXPECT_THROW(parse({"--players", "lots"}).get_int("players", 0), ConfigError);
  EXPECT_THROW(parse({"--rate", "fast"}).get_double("rate", 0.0), ConfigError);
}

TEST(Cli, RequireKnownCatchesTypos) {
  const auto args = parse({"--playrs", "10"});
  EXPECT_THROW(args.require_known({"players", "seed"}), ConfigError);
  EXPECT_NO_THROW(args.require_known({"playrs"}));
}

TEST(Cli, RejectsDegenerateOptions) {
  EXPECT_THROW(parse({"--"}), ConfigError);
  EXPECT_THROW(parse({"--=5"}), ConfigError);
}

}  // namespace
}  // namespace cloudfog::util
