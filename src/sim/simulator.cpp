#include "sim/simulator.hpp"

#include "util/require.hpp"

namespace cloudfog::sim {

EventId Simulator::schedule_in(SimTime delay, EventQueue::Callback cb) {
  CLOUDFOG_REQUIRE(delay >= 0.0, "negative delay");
  return queue_.schedule(now_ + delay, std::move(cb));
}

EventId Simulator::schedule_at(SimTime at, EventQueue::Callback cb) {
  CLOUDFOG_REQUIRE(at >= now_, "cannot schedule in the past");
  return queue_.schedule(at, std::move(cb));
}

std::size_t Simulator::run_until(SimTime until) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.next_time() <= until) {
    auto ev = queue_.pop();
    now_ = ev.time;
    ev.callback();
    ++executed;
  }
  // Advance the clock even if nothing fired in the window, so later
  // schedule_in calls are relative to the end of the window.
  if (until > now_) now_ = until;
  return executed;
}

std::size_t Simulator::run() {
  std::size_t executed = 0;
  while (step()) ++executed;
  return executed;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto ev = queue_.pop();
  now_ = ev.time;
  ev.callback();
  return true;
}

PeriodicTask::PeriodicTask(Simulator& sim, SimTime start, SimTime period,
                           std::function<void(SimTime)> body)
    : sim_(sim), period_(period), body_(std::move(body)) {
  CLOUDFOG_REQUIRE(period > 0.0, "period must be positive");
  CLOUDFOG_REQUIRE(static_cast<bool>(body_), "null periodic body");
  arm(start < sim_.now() ? sim_.now() : start);
}

PeriodicTask::~PeriodicTask() { stop(); }

void PeriodicTask::arm(SimTime at) {
  pending_ = sim_.schedule_at(at, [this, at] {
    if (!running_) return;
    body_(at);
    if (running_) arm(at + period_);
  });
}

void PeriodicTask::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(pending_);
}

}  // namespace cloudfog::sim
