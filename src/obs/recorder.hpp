// The process-wide observability context: one Registry, one TraceBuffer,
// one PhaseProfiler, plus the run-summary list that the report exporter
// serializes.
//
// Everything is gated on a single `enabled()` flag, default OFF, so
// instrumented hot paths cost one predictable branch unless a harness
// opts in (bench_common enables it unless --obs-off). The simulator is
// single-threaded; so is the recorder.
//
// Timestamps: components report sim time through set_sim_time() (the
// domain clock of the current run); trace events are stamped with
// base + sim_time, clamped to be monotonically non-decreasing across the
// whole process — begin_run() re-bases the clock so that consecutive runs
// (each restarting its own sim clock at zero) still produce a monotone
// trace file.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/phase_profiler.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "util/annotations.hpp"

namespace cloudfog::obs {

/// One named statistic of a finished run (mirrors util::RunningStats /
/// util::SampleSet without depending on them).
struct StatSummary {
  std::string name;
  std::uint64_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  bool has_percentiles = false;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Metrics of one completed System run, as reported by the run owner.
struct RunSummary {
  std::string label;
  std::uint64_t measured_subcycles = 0;
  std::vector<StatSummary> stats;
};

/// Buffered obs operations from one deterministic shard of a parallel
/// section (DESIGN.md §10). Workers install a capture thread-locally via
/// Recorder::set_thread_capture; counter adds and trace events land in the
/// buffer instead of the shared registry/trace. The owner replays the
/// buffers in shard order afterwards, reproducing the exact emission
/// sequence (and therefore the exact trace bytes) of a serial run.
class ObsCapture {
 public:
  void clear() { ops_.clear(); }
  bool empty() const { return ops_.empty(); }

 private:
  friend class Recorder;
  /// Trivially copyable: replay is a flat memcpy-friendly scan and the
  /// capture path never allocates per event.
  struct Op {
    bool is_trace = false;
    CounterId counter{};
    std::uint64_t n = 0;
    EventKind kind = EventKind::kRunStart;
    std::int64_t subject = -1;
    std::int64_t object = -1;
    double value = 0.0;
    Note note{};
  };
  std::vector<Op> ops_;
};

class Recorder {
 public:
  static Recorder& global();

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  Registry& registry() { return registry_; }
  const Registry& registry() const { return registry_; }
  PhaseProfiler& profiler() { return profiler_; }
  const PhaseProfiler& profiler() const { return profiler_; }
  TraceBuffer& trace_buffer() { return trace_; }
  const TraceBuffer& trace_buffer() const { return trace_; }

  /// Domain clock of the current run, in seconds.
  void set_sim_time(double t) { sim_time_ = t; }
  double sim_time() const { return sim_time_; }

  /// Monotone trace clock: base + sim time, never going backwards.
  double now() const;

  /// Stamps and buffers a trace event (no-op while disabled). Notes are
  /// interned NoteIds (see obs/note_table.hpp) — hot call sites intern
  /// their fixed vocabulary once, so pushing never allocates.
  void trace(EventKind kind, std::int64_t subject = -1, std::int64_t object = -1,
             double value = 0.0, Note note = {});

  /// Like trace(), but with an explicit domain timestamp in seconds
  /// (event-driven overlay components own their own sim clock).
  /// Not capture-aware: must not be called from parallel shards.
  void trace_at(double t_seconds, EventKind kind, std::int64_t subject = -1,
                std::int64_t object = -1, double value = 0.0, Note note = {});

  /// Counter add that honours a thread-installed capture. Code reachable
  /// from parallel shards must count through this instead of
  /// registry().add() (which is main-thread only).
  void count(CounterId id, std::uint64_t n = 1);

  /// Installs `cap` as the calling thread's obs sink (nullptr uninstalls).
  /// `cap` must be empty: installing a capture that still holds buffered
  /// ops means the previous region was never replayed, and its emissions
  /// would interleave into the new shard's stream — that is a ConfigError
  /// (surfaced through ShardPool::run, which also rejects a worker that
  /// returns with a capture still installed).
  static void set_thread_capture(ObsCapture* cap);

  /// Replays a capture's buffered operations into the live registry/trace
  /// on the calling (main) thread, then clears it (keeping capacity).
  void replay(ObsCapture& cap);

  /// Marks the start of a run: re-bases the trace clock past everything
  /// emitted so far and (when enabled) emits a kRunStart event.
  void begin_run(std::string label);

  void add_run_summary(RunSummary summary);
  const std::vector<RunSummary>& runs() const { return runs_; }

  /// Resets values, trace and runs (names/handles survive). Test helper.
  void reset();

 private:
  Recorder() = default;

  // Parallel shards never touch these directly: trace()/count() divert to
  // the thread's installed ObsCapture, and the owner replays buffers in
  // shard order back on the main thread (DESIGN.md §13).
  bool enabled_ = false;
  CF_MAIN_THREAD_ONLY Registry registry_;
  CF_MAIN_THREAD_ONLY PhaseProfiler profiler_;
  CF_MAIN_THREAD_ONLY TraceBuffer trace_;
  CF_MAIN_THREAD_ONLY std::vector<RunSummary> runs_;
  double sim_time_ = 0.0;
  double base_time_ = 0.0;
  CF_MAIN_THREAD_ONLY mutable double last_emitted_ = 0.0;
};

/// RAII wall-clock timer for a profiled phase. Reads the clock only while
/// the recorder is enabled; a disabled recorder costs one branch.
class ScopedTimer {
 public:
  explicit ScopedTimer(PhaseId id) {
    if (Recorder::global().enabled()) {
      id_ = id;
      armed_ = true;
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ScopedTimer() {
    if (armed_) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
      Recorder::global().profiler().record(id_, static_cast<std::uint64_t>(ns));
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  PhaseId id_{};
  bool armed_ = false;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace cloudfog::obs

// Profiles the enclosing scope under `name`. The phase id is interned once
// (function-local static); the timer itself only reads the clock while
// observability is enabled.
#define CLOUDFOG_OBS_CONCAT2(a, b) a##b
#define CLOUDFOG_OBS_CONCAT(a, b) CLOUDFOG_OBS_CONCAT2(a, b)
#define CLOUDFOG_TIMED_SCOPE(name)                                                   \
  static const ::cloudfog::obs::PhaseId CLOUDFOG_OBS_CONCAT(cf_obs_phase_,           \
                                                            __LINE__) =              \
      ::cloudfog::obs::Recorder::global().profiler().phase(name);                    \
  const ::cloudfog::obs::ScopedTimer CLOUDFOG_OBS_CONCAT(cf_obs_timer_, __LINE__)(   \
      CLOUDFOG_OBS_CONCAT(cf_obs_phase_, __LINE__))
