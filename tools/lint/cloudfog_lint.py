#!/usr/bin/env python3
"""CloudFog determinism & correctness lint.

Enforces project-specific invariants that the compiler cannot:

  cloudfog-wallclock       no wall-clock or libc randomness outside src/sim/
                           seeding: std::chrono::system_clock, time(),
                           rand()/srand(), std::random_device, gettimeofday,
                           clock_gettime, localtime/gmtime/strftime. Seeded
                           replay (CLOUDFOG_FAULT_SEED) and byte-identical
                           fig7/fig8 reports both die the moment real time
                           leaks into simulation state.
  cloudfog-unordered-iter  no iteration over std::unordered_{map,set}:
                           bucket order is implementation- and seed-defined,
                           so any loop over one is a nondeterminism hazard
                           for metrics, traces and reports. Iterate a sorted
                           copy, keep a side vector in insertion order, or
                           suppress with a justification when the loop is
                           provably order-insensitive.
  cloudfog-pointer-key     no pointer-keyed std::map/std::set/unordered
                           containers and no sort comparators that order by
                           raw pointer value: addresses vary run to run.
  cloudfog-uninit-pod      POD members of structs under src/ must carry an
                           in-class initializer; an uninitialized member read
                           is UB and (worse for us) nondeterministic.
  cloudfog-metric-once     every obs metric name (counter/gauge/histogram)
                           is registered at exactly one site; Registry
                           registration is idempotent, so two subsystems
                           silently aliasing one name is a reporting bug.

Concurrency & determinism rules (DESIGN.md §13) — these key on the shard
discipline markers of src/util/annotations.hpp:

  cloudfog-parallel-shared-write
                           inside a CF_PARALLEL_REGION lambda/function,
                           writes to reference-captured (or member) state
                           that is not marked CF_SHARD_LOCAL. Shards may
                           mutate only their own disjoint slots; metrics
                           and trace events go through the thread's
                           ObsCapture (Recorder::trace / Recorder::count).
  cloudfog-raw-rng         construction of std::mt19937 & friends,
                           std::random_device or rand()/srand() anywhere
                           outside src/util/rng: every stochastic decision
                           must flow from the seeded util::Rng (PCG32) so
                           runs replay bit-exactly across platforms.
  cloudfog-float-reduce    accumulation into a floating scalar across an
                           unordered container or from inside a parallel
                           region: float addition is not associative, so
                           any order-instability changes the result bytes.
                           Accumulate per shard (CF_SHARD_LOCAL slots) and
                           reduce in fixed shard order instead.
  cloudfog-static-mutable  non-const static at namespace or function scope
                           under src/ (outside the whitelisted note-table
                           interner): hidden mutable process state breaks
                           run-to-run isolation and is a shared-write
                           hazard the moment a parallel region can reach
                           it. Make it const, pass it explicitly, or
                           suppress with a justification.

Suppression: append `// NOLINT(cloudfog-<rule>): <justification>` to the
offending line, or put `// NOLINTNEXTLINE(cloudfog-<rule>): <justification>`
on the line above. A suppression without a justification is itself an error
(cloudfog-nolint).

Engine: uses the libclang AST when the `clang` python package is importable
(exact type resolution for unordered-iter / pointer-key), and falls back to a
resilient token-level scanner otherwise. The token engine strips comments and
string literals before matching, tracks declarations of unordered containers
(including those in a sibling header), and is the engine of record in CI
images without libclang.

Exit status: 0 clean, 1 findings, 2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import bisect
import os
import re
import sys
from dataclasses import dataclass, field

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

CXX_EXTENSIONS = (".cpp", ".cc", ".cxx", ".hpp", ".hh", ".h")

RULES = {
    "cloudfog-wallclock": "wall-clock / libc randomness outside src/sim/ seeding",
    "cloudfog-unordered-iter": "iteration over an unordered container",
    "cloudfog-pointer-key": "pointer-keyed associative container or pointer-order comparator",
    "cloudfog-uninit-pod": "uninitialized POD member in a struct under src/",
    "cloudfog-metric-once": "obs metric name registered at more than one site",
    "cloudfog-parallel-shared-write": "shared-state write inside a CF_PARALLEL_REGION",
    "cloudfog-raw-rng": "raw RNG engine / entropy source outside src/util/rng",
    "cloudfog-float-reduce": "order-sensitive floating accumulation",
    "cloudfog-static-mutable": "non-const namespace/function-scope static under src/",
    "cloudfog-nolint": "NOLINT suppression without a justification",
}

# Directories (relative to repo root) whose files are exempt from the
# wallclock rule: simulation seeding legitimately consumes entropy here.
WALLCLOCK_EXEMPT_PREFIXES = ("src/sim/",)


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class SourceFile:
    path: str          # repo-relative, forward slashes
    raw_lines: list[str]
    code_lines: list[str] = field(default_factory=list)  # comments/strings blanked


NOLINT_RE = re.compile(r"//\s*NOLINT(NEXTLINE)?\s*\(([^)]*)\)\s*(?::\s*(.*\S))?")


def strip_comments_and_strings(lines: list[str]) -> list[str]:
    """Blank out comments, string and char literals, preserving layout.

    Replaced characters become spaces so that column/line arithmetic and
    word boundaries survive. Handles // and /* */ comments, escapes inside
    literals, and raw strings well enough for this codebase (no multi-line
    raw strings with parens in the delimiter).
    """
    out = []
    in_block_comment = False
    for line in lines:
        buf = []
        i = 0
        n = len(line)
        while i < n:
            c = line[i]
            if in_block_comment:
                if c == "*" and i + 1 < n and line[i + 1] == "/":
                    in_block_comment = False
                    buf.append("  ")
                    i += 2
                else:
                    buf.append(" ")
                    i += 1
                continue
            if c == "/" and i + 1 < n and line[i + 1] == "/":
                buf.append(" " * (n - i))
                break
            if c == "/" and i + 1 < n and line[i + 1] == "*":
                in_block_comment = True
                buf.append("  ")
                i += 2
                continue
            if c in "\"'":
                quote = c
                buf.append(quote)
                i += 1
                while i < n:
                    if line[i] == "\\" and i + 1 < n:
                        buf.append("  ")
                        i += 2
                        continue
                    if line[i] == quote:
                        buf.append(quote)
                        i += 1
                        break
                    buf.append(" ")
                    i += 1
                continue
            buf.append(c)
            i += 1
        out.append("".join(buf))
    return out


def load_source(abs_path: str, rel_path: str) -> SourceFile:
    with open(abs_path, encoding="utf-8", errors="replace") as f:
        raw = f.read().splitlines()
    sf = SourceFile(path=rel_path.replace(os.sep, "/"), raw_lines=raw)
    sf.code_lines = strip_comments_and_strings(raw)
    return sf


# --------------------------------------------------------------------------
# Suppression handling
# --------------------------------------------------------------------------

def suppressions_for(sf: SourceFile) -> tuple[dict[int, set[str]], list[Finding]]:
    """Returns {1-based line: {rules suppressed on that line}} and any
    malformed-suppression findings (missing justification)."""
    by_line: dict[int, set[str]] = {}
    bad: list[Finding] = []
    for idx, line in enumerate(sf.raw_lines, start=1):
        m = NOLINT_RE.search(line)
        if not m:
            continue
        nextline, rules_text, justification = m.group(1), m.group(2), m.group(3)
        rules = {r.strip() for r in rules_text.split(",") if r.strip()}
        unknown = {r for r in rules if r.startswith("cloudfog-") and r not in RULES}
        for r in sorted(unknown):
            bad.append(Finding(sf.path, idx, "cloudfog-nolint",
                               f"NOLINT names unknown rule '{r}'"))
        cloudfog_rules = {r for r in rules if r in RULES}
        if not cloudfog_rules:
            continue  # foreign NOLINT (e.g. clang-tidy) — not ours to police
        if not justification:
            bad.append(Finding(sf.path, idx, "cloudfog-nolint",
                               "NOLINT(cloudfog-*) requires a justification: "
                               "`// NOLINT(cloudfog-rule): why this is safe`"))
            continue
        target = idx + 1 if nextline else idx
        by_line.setdefault(target, set()).update(cloudfog_rules)
    return by_line, bad


# --------------------------------------------------------------------------
# Rule: cloudfog-wallclock
# --------------------------------------------------------------------------

WALLCLOCK_PATTERNS = [
    (re.compile(r"std::chrono::system_clock|\bsystem_clock\s*::"),
     "std::chrono::system_clock reads wall-clock time"),
    (re.compile(r"(?<![\w.:>])time\s*\(|std::time\s*\("),
     "time() reads wall-clock time"),
    (re.compile(r"(?<![\w.:>])s?rand\s*\(|std::s?rand\s*\("),
     "rand()/srand() is non-seedable global state"),
    (re.compile(r"\brandom_device\b"),
     "std::random_device draws real entropy"),
    (re.compile(r"\b(?:gettimeofday|clock_gettime|localtime(?:_r)?|gmtime(?:_r)?|strftime)\s*\("),
     "libc wall-clock API"),
]


def check_wallclock(sf: SourceFile) -> list[Finding]:
    if any(sf.path.startswith(p) for p in WALLCLOCK_EXEMPT_PREFIXES):
        return []
    findings = []
    for idx, line in enumerate(sf.code_lines, start=1):
        for pat, why in WALLCLOCK_PATTERNS:
            if pat.search(line):
                findings.append(Finding(
                    sf.path, idx, "cloudfog-wallclock",
                    f"{why}; simulation code must derive all time/randomness "
                    "from the sim clock and seeded util::Rng"))
    return findings


# --------------------------------------------------------------------------
# Rule: cloudfog-unordered-iter
# --------------------------------------------------------------------------

UNORDERED_DECL_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\s*<")
IDENT_RE = re.compile(r"[A-Za-z_]\w*")


def unordered_vars(code_lines: list[str]) -> set[str]:
    """Names of variables/members declared with an unordered container type.

    Scans for `unordered_map<...> name` / `unordered_set<...> name`,
    balancing template angle brackets across line breaks.
    """
    names: set[str] = set()
    text = "\n".join(code_lines)
    for m in UNORDERED_DECL_RE.finditer(text):
        i = m.end() - 1  # at '<'
        depth = 0
        n = len(text)
        while i < n:
            if text[i] == "<":
                depth += 1
            elif text[i] == ">":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        if depth != 0:
            continue
        rest = text[i + 1:i + 200]
        dm = re.match(r"\s*&?\s*([A-Za-z_]\w*)\s*(?:[;={(,)]|$)", rest)
        if dm:
            name = dm.group(1)
            if name not in ("const",):
                names.add(name)
    return names


def sibling_header_vars(abs_path: str) -> set[str]:
    """For foo.cpp, also pick up unordered members declared in foo.hpp/.h."""
    base, ext = os.path.splitext(abs_path)
    if ext not in (".cpp", ".cc", ".cxx"):
        return set()
    for hext in (".hpp", ".hh", ".h"):
        hpath = base + hext
        if os.path.isfile(hpath):
            with open(hpath, encoding="utf-8", errors="replace") as f:
                return unordered_vars(strip_comments_and_strings(f.read().splitlines()))
    return set()


def range_for_expr(line: str) -> str | None:
    """Range expression of a range-for on this line, or None.

    Balances parens after `for (` (the head may close on a later line — then
    the rest of this line is taken), skips classic three-clause fors (`;` in
    the head), and splits at the top-level `:` that is not part of `::`.
    """
    m = re.search(r"\bfor\s*\(", line)
    if not m:
        return None
    i = m.end()
    depth = 1
    head_end = len(line)
    while i < len(line):
        if line[i] == "(":
            depth += 1
        elif line[i] == ")":
            depth -= 1
            if depth == 0:
                head_end = i
                break
        i += 1
    head = line[m.end():head_end]
    if ";" in head:
        return None
    colon = None
    j = 0
    bracket = 0
    while j < len(head):
        c = head[j]
        if c in "[<(":
            bracket += 1
        elif c in "]>)":
            bracket -= 1
        elif c == ":" and bracket <= 0:
            if head[j - 1:j] == ":" or head[j + 1:j + 2] == ":":
                j += 2
                continue
            colon = j
            break
        j += 1
    if colon is None:
        return None
    return head[colon + 1:]


def check_unordered_iter(sf: SourceFile, abs_path: str) -> list[Finding]:
    names = unordered_vars(sf.code_lines) | sibling_header_vars(abs_path)
    findings = []
    fix = ("iterate a sorted copy or a side vector in insertion order, or "
           "suppress with a justification if provably order-insensitive")
    for idx, line in enumerate(sf.code_lines, start=1):
        # Range-for directly over an unordered-typed expression.
        expr = range_for_expr(line)
        if expr is not None:
            if "unordered_" in expr:
                findings.append(Finding(
                    sf.path, idx, "cloudfog-unordered-iter",
                    f"range-for over an unordered container; {fix}"))
                continue
            expr_ids = set(IDENT_RE.findall(expr))
            hit = expr_ids & names
            if hit:
                findings.append(Finding(
                    sf.path, idx, "cloudfog-unordered-iter",
                    f"range-for over unordered container '{sorted(hit)[0]}'; {fix}"))
                continue
        # Iterator-style loops / explicit traversal entry points.
        for name in names:
            if re.search(rf"\b{re.escape(name)}\s*\.\s*c?begin\s*\(", line):
                findings.append(Finding(
                    sf.path, idx, "cloudfog-unordered-iter",
                    f"iterator traversal of unordered container '{name}'; {fix}"))
                break
    return findings


# --------------------------------------------------------------------------
# Rule: cloudfog-pointer-key
# --------------------------------------------------------------------------

POINTER_KEY_RE = re.compile(
    r"\b(?:std::)?(unordered_)?(map|set|multimap|multiset)\s*<\s*"
    r"(?:const\s+)?[A-Za-z_][\w:<>]*\s*\*")
SORT_CALL_RE = re.compile(r"\b(?:std::)?(?:stable_)?sort\s*\(")
PTR_LAMBDA_RE = re.compile(
    r"\[[^\]]*\]\s*\(\s*(?:const\s+)?[A-Za-z_][\w:]*\s*\*\s*(?:const\s+)?([A-Za-z_]\w*)\s*,"
    r"\s*(?:const\s+)?[A-Za-z_][\w:]*\s*\*\s*(?:const\s+)?([A-Za-z_]\w*)\s*\)")


def check_pointer_key(sf: SourceFile) -> list[Finding]:
    findings = []
    for idx, line in enumerate(sf.code_lines, start=1):
        if POINTER_KEY_RE.search(line):
            findings.append(Finding(
                sf.path, idx, "cloudfog-pointer-key",
                "associative container keyed on a raw pointer: address order "
                "(and hash placement) varies run to run; key on a stable id"))
    # Pointer-ordering comparators: a sort whose lambda takes two pointers
    # and returns `a < b` on the pointers themselves. Window a few lines
    # past the sort call to catch wrapped arguments.
    text_lines = sf.code_lines
    for idx, line in enumerate(text_lines, start=1):
        if not SORT_CALL_RE.search(line):
            continue
        window = " ".join(text_lines[idx - 1:idx + 3])
        lm = PTR_LAMBDA_RE.search(window)
        if not lm:
            continue
        a, b = lm.group(1), lm.group(2)
        if re.search(rf"return\s+{re.escape(a)}\s*[<>]\s*{re.escape(b)}\s*;", window):
            findings.append(Finding(
                sf.path, idx, "cloudfog-pointer-key",
                f"sort comparator orders by raw pointer value ('{a} < {b}'): "
                "addresses vary run to run; compare a stable field instead"))
    return findings


# --------------------------------------------------------------------------
# Rule: cloudfog-uninit-pod
# --------------------------------------------------------------------------

POD_TYPE_RE = (
    r"(?:unsigned\s+|signed\s+)?"
    r"(?:bool|char|short|int|long(?:\s+long)?|float|double|"
    r"std::size_t|std::ptrdiff_t|std::u?int(?:8|16|32|64)?_t|size_t|"
    r"u?int(?:8|16|32|64)_t)"
)
POD_MEMBER_RE = re.compile(
    rf"^\s*(?:const\s+)?({POD_TYPE_RE})(?:\s+const)?\s+"
    r"([A-Za-z_]\w*)\s*;\s*$")
POD_PTR_MEMBER_RE = re.compile(
    r"^\s*(?:const\s+)?[A-Za-z_][\w:]*(?:<[^;]*>)?\s*\*\s*(?:const\s+)?"
    r"([A-Za-z_]\w*)\s*;\s*$")
STRUCT_OPEN_RE = re.compile(r"\bstruct\s+([A-Za-z_]\w*)?[^;{]*\{")


def check_uninit_pod(sf: SourceFile) -> list[Finding]:
    # Applies to the library tree (any path with a src/ segment, so lint
    # fixtures can exercise the rule from tests/tools/fixtures/src/).
    if not re.search(r"(^|/)src/", sf.path):
        return []
    findings = []
    # Track `struct ... {` regions by brace depth; only flag member lines at
    # the struct body's own depth (nested function bodies sit deeper, nested
    # structs push their own frame).
    struct_depths: list[int] = []  # brace depth of each open struct body
    depth = 0
    for idx, line in enumerate(sf.code_lines, start=1):
        opens = STRUCT_OPEN_RE.search(line)
        if struct_depths and depth == struct_depths[-1] and not opens:
            m = POD_MEMBER_RE.match(line) or POD_PTR_MEMBER_RE.match(line)
            if m:
                name = m.group(m.lastindex)
                findings.append(Finding(
                    sf.path, idx, "cloudfog-uninit-pod",
                    f"POD member '{name}' has no in-class initializer; "
                    "default-constructed instances read indeterminate "
                    "values — add `{}` or an explicit default"))
        if opens:
            before = line[:opens.end()]
            struct_depths.append(depth + before.count("{") - before.count("}"))
        depth += line.count("{") - line.count("}")
        while struct_depths and depth < struct_depths[-1]:
            struct_depths.pop()
    return findings


# --------------------------------------------------------------------------
# Rule: cloudfog-metric-once (cross-file)
# --------------------------------------------------------------------------

METRIC_REG_RE = re.compile(r"\b(counter|gauge|histogram)\s*\(\s*\"")
METRIC_NAME_RE = re.compile(r"\b(?:counter|gauge|histogram)\s*\(\s*\"([^\"]+)\"")


def collect_metric_sites(sf: SourceFile) -> list[tuple[str, int, str]]:
    """(metric name, line, kind) for each registration site in this file.

    Matches against raw lines (the name lives in a string literal, which the
    sanitized text blanks out) but requires the call shape on the sanitized
    line so that commented-out code does not count.
    """
    sites = []
    for idx, (raw, code) in enumerate(zip(sf.raw_lines, sf.code_lines), start=1):
        if not METRIC_REG_RE.search(code):
            continue
        for m in METRIC_NAME_RE.finditer(raw):
            # Skip read-side helpers like counter_or_zero("name").
            prefix = raw[:m.start()]
            if prefix.rstrip().endswith(("_or_zero", "_value", "_name")):
                continue
            kind = m.group(0).split("(")[0].strip()
            sites.append((m.group(1), idx, kind))
    return sites


def check_metric_once(per_file_sites: dict[str, list[tuple[str, int, str]]],
                      suppressed: dict[str, dict[int, set[str]]]) -> list[Finding]:
    by_name: dict[str, list[tuple[str, int, str]]] = {}
    for path, sites in per_file_sites.items():
        for name, line, kind in sites:
            if "cloudfog-metric-once" in suppressed.get(path, {}).get(line, set()):
                continue
            by_name.setdefault(name, []).append((path, line, kind))
    findings = []
    for name, sites in sorted(by_name.items()):
        if len(sites) <= 1:
            continue
        locs = ", ".join(f"{p}:{l}" for p, l, _ in sites)
        for path, line, _ in sites:
            findings.append(Finding(
                path, line, "cloudfog-metric-once",
                f"metric '{name}' registered at {len(sites)} sites ({locs}); "
                "register once and pass the handle"))
    return findings


# --------------------------------------------------------------------------
# Shared machinery for region-scoped rules (parallel-region / loop bodies)
# --------------------------------------------------------------------------

class FlatText:
    """Sanitized source flattened to one string, with offset→line mapping."""

    def __init__(self, code_lines: list[str]):
        self.text = "\n".join(code_lines)
        self.starts: list[int] = []
        off = 0
        for line in code_lines:
            self.starts.append(off)
            off += len(line) + 1

    def line_of(self, pos: int) -> int:
        """1-based line containing offset `pos`."""
        return bisect.bisect_right(self.starts, pos)


def match_brace(text: str, open_pos: int) -> int:
    """Offset of the `}` matching the `{` at open_pos, or -1."""
    depth = 0
    for i in range(open_pos, len(text)):
        c = text[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return i
    return -1


@dataclass
class ParallelRegion:
    marker_line: int           # 1-based line of the CF_PARALLEL_REGION marker
    body_start: int            # offset of the opening `{`
    body_end: int              # offset of the matching `}`
    capture: str | None        # lambda capture list text, None for functions
    params: set[str]           # parameter names


def split_top_level(text: str, sep: str = ",") -> list[str]:
    """Split on `sep` outside (), [], <> and {}."""
    parts, depth, cur = [], 0, []
    for c in text:
        if c in "([<{":
            depth += 1
        elif c in ")]>}":
            depth -= 1
        elif c == sep and depth == 0:
            parts.append("".join(cur))
            cur = []
            continue
        cur.append(c)
    parts.append("".join(cur))
    return parts


def param_names(params_text: str) -> set[str]:
    names = set()
    for piece in split_top_level(params_text):
        piece = piece.split("=")[0]
        ids = IDENT_RE.findall(piece)
        if ids:
            names.add(ids[-1])
    return names


def find_parallel_regions(tx: FlatText) -> list[ParallelRegion]:
    """CF_PARALLEL_REGION-marked lambda/function bodies in sanitized text.

    The marker prefixes either a lambda (`CF_PARALLEL_REGION [&](int s) {`)
    or a function definition (`CF_PARALLEL_REGION void f(...) { ... }`).
    A marker on a pure declaration (no body before the `;`) documents the
    contract but scopes nothing.
    """
    regions = []
    for m in re.finditer(r"\bCF_PARALLEL_REGION\b", tx.text):
        # Not a marker use when it appears on a preprocessor line (the
        # macro's own definition in annotations.hpp).
        line_start = tx.starts[tx.line_of(m.start()) - 1]
        if tx.text[line_start:m.start()].lstrip().startswith("#"):
            continue
        i = m.end()
        n = len(tx.text)
        while i < n and tx.text[i].isspace():
            i += 1
        capture = None
        if i < n and tx.text[i] == "[":
            close = tx.text.find("]", i)
            if close == -1:
                continue
            capture = tx.text[i + 1:close]
            i = close + 1
        # Parameter list: first balanced (...) before the body opens.
        params: set[str] = set()
        depth = 0
        body_open = -1
        paren_open = -1
        while i < n:
            c = tx.text[i]
            if c == "(":
                if depth == 0 and paren_open == -1:
                    paren_open = i
                depth += 1
            elif c == ")":
                depth -= 1
                if depth == 0 and paren_open != -1 and not params:
                    params = param_names(tx.text[paren_open + 1:i])
            elif depth == 0 and c == "{":
                body_open = i
                break
            elif depth == 0 and c == ";":
                break  # declaration only
            i += 1
        if body_open == -1:
            continue
        body_close = match_brace(tx.text, body_open)
        if body_close == -1:
            continue
        regions.append(ParallelRegion(tx.line_of(m.start()), body_open, body_close,
                                      capture, params))
    return regions


# Declaration on one line: optional qualifiers, a type token (possibly
# templated / qualified), then the declared name followed by an
# initializer, call, brace-init, subscript or `;`. Heuristic — one name
# per line, which matches the codebase style.
DECL_RE = re.compile(
    r"^\s*(?:for\s*\(\s*)?"
    r"(?:const\s+|constexpr\s+|mutable\s+|struct\s+|auto\s+)*"
    r"[A-Za-z_][\w:]*(?:\s*<[^;{}]*>)?(?:\s*[&*])*\s+"
    r"[&*]?\s*([A-Za-z_]\w*)\s*(?:[=;({\[]|$)")

ASSIGN_RE = re.compile(
    r"\b([A-Za-z_]\w*)"
    r"((?:\s*(?:\.|->)\s*[A-Za-z_]\w*|\s*\[[^\]]*\])*)"
    r"\s*(?:[+\-*/%&|^]|<<|>>)?=(?!=)")
CREMENT_RE = re.compile(
    r"(?:\+\+|--)\s*([A-Za-z_]\w*)|"
    r"\b([A-Za-z_]\w*)((?:\s*(?:\.|->)\s*[A-Za-z_]\w*|\s*\[[^\]]*\])*)\s*(?:\+\+|--)")
MUTATING_CALL_RE = re.compile(
    r"\b([A-Za-z_]\w*)((?:\s*(?:\.|->)\s*[A-Za-z_]\w*|\s*\[[^\]]*\])*)"
    r"\s*(?:\.|->)\s*(?:push_back|pop_back|emplace_back|emplace|insert|erase|"
    r"clear|resize|assign|reserve|swap)\s*\(")
FLOAT_COMPOUND_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s*[+\-*/]=(?!=)")

CONTROL_KEYWORDS = {"if", "while", "for", "switch", "return", "case", "else",
                    "do", "sizeof", "catch", "this", "std", "operator"}


def marker_names(code_lines: list[str], marker: str) -> set[str]:
    """Names declared on lines carrying `marker` (e.g. CF_SHARD_LOCAL)."""
    names = set()
    for line in code_lines:
        if marker not in line:
            continue
        decl = line.split(marker, 1)[1]
        stop = len(decl)
        for ch in ("=", ";", "{"):
            p = decl.find(ch)
            if p != -1:
                stop = min(stop, p)
        ids = IDENT_RE.findall(decl[:stop])
        if ids:
            names.add(ids[-1])
    return names


def sibling_header_lines(abs_path: str) -> list[str]:
    """Sanitized lines of foo.hpp/.hh/.h next to foo.cpp (else [])."""
    base, ext = os.path.splitext(abs_path)
    if ext not in (".cpp", ".cc", ".cxx"):
        return []
    for hext in (".hpp", ".hh", ".h"):
        hpath = base + hext
        if os.path.isfile(hpath):
            with open(hpath, encoding="utf-8", errors="replace") as f:
                return strip_comments_and_strings(f.read().splitlines())
    return []


def float_var_names(code_lines: list[str]) -> set[str]:
    """Names declared with float/double type (members and locals alike)."""
    names = set()
    pat = re.compile(r"\b(?:double|float)\s+([A-Za-z_]\w*)\s*(?:[=;{,)]|$)")
    for line in code_lines:
        for m in pat.finditer(line):
            names.add(m.group(1))
    return names


def captured_by_ref(name: str, capture: str | None) -> bool:
    """Whether `name` is reachable by reference inside the region.

    Functions (capture None) see everything by reference. For lambdas the
    capture list decides; members (trailing `_`) ride on `this`/default
    captures, which always give reference semantics to members.
    """
    if capture is None:
        return True
    items = [c.strip() for c in capture.split(",") if c.strip()]
    default_ref = "&" in items
    default_val = "=" in items
    if name.endswith("_"):
        return default_ref or default_val or "this" in items or "*this" in items
    if f"&{name}" in items:
        return True
    if name in items:
        return False  # explicit by-value copy
    return default_ref


# --------------------------------------------------------------------------
# Rule: cloudfog-parallel-shared-write (+ the region half of float-reduce)
# --------------------------------------------------------------------------

def region_writes(sf: SourceFile, region: ParallelRegion, tx: FlatText,
                  shard_local: set[str], float_vars: set[str],
                  active: set[str]) -> list[Finding]:
    findings = []
    first_line = tx.line_of(region.body_start)
    last_line = tx.line_of(region.body_end)
    locals_seen: set[str] = set(region.params)

    for idx in range(first_line, last_line + 1):
        line = sf.code_lines[idx - 1]
        # Range-for loop variables count as locals.
        head = range_for_expr(line)
        if head is not None:
            before = line[:line.find(":", line.find("for"))]
            ids = IDENT_RE.findall(before.split("(", 1)[-1])
            if ids:
                locals_seen.add(ids[-1])
        dm = DECL_RE.match(line)
        if dm:
            locals_seen.add(dm.group(1))

        writes: list[tuple[str, str]] = []  # (base, why)
        if not dm:  # a matched declaration's `=` is an initializer
            for m in ASSIGN_RE.finditer(line):
                writes.append((m.group(1), "assignment"))
        for m in CREMENT_RE.finditer(line):
            writes.append((m.group(1) or m.group(2), "increment"))
        for m in MUTATING_CALL_RE.finditer(line):
            writes.append((m.group(1), "mutating container call"))

        for base, why in writes:
            if base in locals_seen or base in shard_local:
                continue
            if base in CONTROL_KEYWORDS:
                continue
            if not captured_by_ref(base, region.capture):
                continue
            if "cloudfog-parallel-shared-write" in active:
                findings.append(Finding(
                    sf.path, idx, "cloudfog-parallel-shared-write",
                    f"{why} to '{base}' inside a CF_PARALLEL_REGION: shards may "
                    "write only CF_SHARD_LOCAL slots and their own locals; "
                    "metrics/trace go through the thread's ObsCapture"))
        if "cloudfog-float-reduce" in active:
            for m in FLOAT_COMPOUND_RE.finditer(line):
                base = m.group(1)
                if base in locals_seen or base in shard_local:
                    continue
                if base not in float_vars:
                    continue
                if not captured_by_ref(base, region.capture):
                    continue
                findings.append(Finding(
                    sf.path, idx, "cloudfog-float-reduce",
                    f"floating accumulation into shared '{base}' inside a "
                    "CF_PARALLEL_REGION: float addition is not associative — "
                    "accumulate per shard and reduce in fixed shard order"))
    return findings


def check_parallel_regions(sf: SourceFile, abs_path: str,
                           active: set[str]) -> list[Finding]:
    if "CF_PARALLEL_REGION" not in sf.code_lines and \
            not any("CF_PARALLEL_REGION" in l for l in sf.code_lines):
        return []
    tx = FlatText(sf.code_lines)
    header = sibling_header_lines(abs_path)
    shard_local = marker_names(sf.code_lines, "CF_SHARD_LOCAL") | \
        marker_names(header, "CF_SHARD_LOCAL")
    float_vars = float_var_names(sf.code_lines) | float_var_names(header)
    findings = []
    for region in find_parallel_regions(tx):
        findings += region_writes(sf, region, tx, shard_local, float_vars, active)
    return findings


# --------------------------------------------------------------------------
# Rule: cloudfog-raw-rng
# --------------------------------------------------------------------------

RAW_RNG_EXEMPT_PREFIXES = ("src/util/rng",)

RAW_RNG_PATTERNS = [
    (re.compile(r"\bmt19937(?:_64)?\b"),
     "std::mt19937 is not bit-exact across standard libraries"),
    (re.compile(r"\b(?:minstd_rand0?|ranlux(?:24|48)(?:_base)?|knuth_b|"
                r"default_random_engine)\b"),
     "standard-library RNG engine"),
    (re.compile(r"\brandom_device\b"),
     "std::random_device draws real entropy"),
    (re.compile(r"(?<![\w.:>])s?rand\s*\(|std::s?rand\s*\(|\bdrand48\s*\(|"
                r"\blrand48\s*\(|(?<![\w.:>])random\s*\("),
     "libc RNG is non-replayable global state"),
]


def check_raw_rng(sf: SourceFile) -> list[Finding]:
    if any(sf.path.startswith(p) for p in RAW_RNG_EXEMPT_PREFIXES):
        return []
    findings = []
    for idx, line in enumerate(sf.code_lines, start=1):
        for pat, why in RAW_RNG_PATTERNS:
            if pat.search(line):
                findings.append(Finding(
                    sf.path, idx, "cloudfog-raw-rng",
                    f"{why}; derive a stream from the seeded util::Rng "
                    "(PCG32) / util::splitmix64 instead"))
    return findings


# --------------------------------------------------------------------------
# Rule: cloudfog-float-reduce (unordered-loop half)
# --------------------------------------------------------------------------

def check_float_reduce_loops(sf: SourceFile, abs_path: str) -> list[Finding]:
    names = unordered_vars(sf.code_lines) | sibling_header_vars(abs_path)
    tx = FlatText(sf.code_lines)
    header = sibling_header_lines(abs_path)
    float_vars = float_var_names(sf.code_lines) | float_var_names(header)
    findings = []
    for idx, line in enumerate(sf.code_lines, start=1):
        expr = range_for_expr(line)
        if expr is None:
            continue
        expr_ids = set(IDENT_RE.findall(expr))
        if "unordered_" not in expr and not (expr_ids & names):
            continue
        # Body extent: the brace-block after the head, or the rest of the
        # statement for a braceless single-statement body.
        start = tx.starts[idx - 1]
        open_pos = tx.text.find("{", start)
        semi_pos = tx.text.find(";", start)
        if open_pos != -1 and (semi_pos == -1 or open_pos < semi_pos):
            close = match_brace(tx.text, open_pos)
            if close == -1:
                continue
            first, last = tx.line_of(open_pos), tx.line_of(close)
        else:
            first = last = tx.line_of(semi_pos if semi_pos != -1 else start)
        body_locals: set[str] = set()
        for bidx in range(first, last + 1):
            bline = sf.code_lines[bidx - 1]
            dm = DECL_RE.match(bline)
            if dm:
                body_locals.add(dm.group(1))
            for m in FLOAT_COMPOUND_RE.finditer(bline):
                base = m.group(1)
                if base in body_locals or base not in float_vars:
                    continue
                findings.append(Finding(
                    sf.path, bidx, "cloudfog-float-reduce",
                    f"floating accumulation into '{base}' while iterating an "
                    "unordered container: bucket order is seed-defined and "
                    "float addition is not associative — iterate a sorted "
                    "copy or accumulate in a keyed side structure"))
    return findings


# --------------------------------------------------------------------------
# Rule: cloudfog-static-mutable
# --------------------------------------------------------------------------

# The note-table interner is the sanctioned immortal singleton (DESIGN.md
# §11.0): trace sinks resolve note ids during static destruction, so the
# table must outlive every normally-scoped static.
STATIC_MUTABLE_WHITELIST = ("src/obs/note_table.cpp",)

STATIC_DECL_RE = re.compile(r"^\s*(?:inline\s+)?(?:thread_local\s+)?static\b(?!_)")
CLASS_OPEN_RE = re.compile(r"\b(?:struct|class)\s+(?:[A-Za-z_]\w*)?[^;{]*\{")


def static_decl_kind(rest: str) -> str | None:
    """Classify what follows `static`: 'var' (mutable), 'const', 'fn' or None.

    Scans for the first of `=`, `;`, `(`, `{` outside template angle
    brackets: `(` first means a function declaration/definition, `=`/`;`
    first means a variable.
    """
    rest = re.sub(r"^\s*(?:inline\s+|thread_local\s+)*", "", rest)
    if re.match(r"\s*(?:const\b|constexpr\b)", rest):
        return "const"
    angle = 0
    for c in rest:
        if c == "<":
            angle += 1
        elif c == ">":
            angle = max(0, angle - 1)
        elif angle == 0:
            if c == "(":
                return "fn"
            if c in "=;{":
                return "var"
    return None


def check_static_mutable(sf: SourceFile) -> list[Finding]:
    if not re.search(r"(^|/)src/", sf.path):
        return []
    if any(sf.path.endswith(w) for w in STATIC_MUTABLE_WHITELIST):
        return []
    findings = []
    class_depths: list[int] = []
    depth = 0
    for idx, line in enumerate(sf.code_lines, start=1):
        opens = CLASS_OPEN_RE.search(line)
        at_member_depth = bool(class_depths) and depth == class_depths[-1]
        m = STATIC_DECL_RE.match(line)
        # Static *data members* are a separate concern (they are at least
        # visible in the class API); this rule targets the hidden ones at
        # namespace/function scope.
        if m and not at_member_depth:
            kind = static_decl_kind(line[line.find("static") + len("static"):])
            if kind == "var":
                findings.append(Finding(
                    sf.path, idx, "cloudfog-static-mutable",
                    "non-const static at namespace/function scope: hidden "
                    "mutable process state outlives runs and is writable "
                    "from any thread — make it const, pass it explicitly, "
                    "or justify with a NOLINT"))
        if opens:
            before = line[:opens.end()]
            class_depths.append(depth + before.count("{") - before.count("}"))
        depth += line.count("{") - line.count("}")
        while class_depths and depth < class_depths[-1]:
            class_depths.pop()
    return findings


# --------------------------------------------------------------------------
# Optional libclang engine
# --------------------------------------------------------------------------

def try_clang_engine():
    """Returns the clang.cindex module if importable and able to parse, else
    None. The AST engine refines unordered-iter and pointer-key; all other
    rules always run on the token engine."""
    try:
        from clang import cindex  # type: ignore
        cindex.Index.create()
        return cindex
    except Exception:
        return None


def clang_check_file(cindex, abs_path: str, rel_path: str) -> list[Finding] | None:
    """AST-precise unordered-iter + pointer-key for one file. Returns None on
    any parse trouble so the caller falls back to the token engine."""
    try:
        index = cindex.Index.create()
        tu = index.parse(abs_path, args=["-std=c++20", f"-I{os.path.join(REPO_ROOT, 'src')}"])
        if any(d.severity >= cindex.Diagnostic.Fatal for d in tu.diagnostics):
            return None
        findings: list[Finding] = []

        def type_is_unordered(t) -> bool:
            return "unordered_map" in t.spelling or "unordered_set" in t.spelling

        def walk(node):
            if node.kind == cindex.CursorKind.CXX_FOR_RANGE_STMT:
                children = list(node.get_children())
                if len(children) >= 2 and type_is_unordered(children[-2].type):
                    findings.append(Finding(
                        rel_path, node.location.line, "cloudfog-unordered-iter",
                        "range-for over an unordered container (AST engine)"))
            if node.kind in (cindex.CursorKind.VAR_DECL, cindex.CursorKind.FIELD_DECL):
                t = node.type.spelling
                if re.search(r"\b(?:unordered_)?(?:map|set)<[^,>]*\*", t):
                    findings.append(Finding(
                        rel_path, node.location.line, "cloudfog-pointer-key",
                        f"associative container keyed on a raw pointer: {t}"))
            for c in node.get_children():
                if c.location.file and c.location.file.name == abs_path:
                    walk(c)

        walk(tu.cursor)
        return findings
    except Exception:
        return None


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

def gather_files(paths: list[str]) -> list[tuple[str, str]]:
    """(abs, repo-relative) pairs for every C++ source under `paths`."""
    result = []
    for p in paths:
        ap = p if os.path.isabs(p) else os.path.join(REPO_ROOT, p)
        ap = os.path.abspath(ap)
        if os.path.isfile(ap):
            if ap.endswith(CXX_EXTENSIONS):
                result.append((ap, os.path.relpath(ap, REPO_ROOT)))
            continue
        if not os.path.isdir(ap):
            print(f"cloudfog_lint: no such path: {p}", file=sys.stderr)
            sys.exit(2)
        for root, dirs, files in os.walk(ap):
            dirs[:] = sorted(d for d in dirs if not d.startswith(".") and d != "build")
            for f in sorted(files):
                if f.endswith(CXX_EXTENSIONS):
                    full = os.path.join(root, f)
                    result.append((full, os.path.relpath(full, REPO_ROOT)))
    return result


@dataclass
class FileScan:
    """Picklable per-file result: everything main() needs to merge."""
    path: str
    findings: list[Finding]
    bad_suppressions: list[Finding]
    metric_sites: list[tuple[str, int, str]]
    suppressions: dict[int, set[str]]


# Worker-process libclang handle, initialised lazily per process so the
# non-picklable cindex object never crosses the fork/pickle boundary.
_worker_cindex = None
_worker_cindex_tried = False


def scan_file(abs_path: str, rel_path: str, active: frozenset,
              want_clang: bool) -> FileScan:
    """Every single-file rule over one source. Pure function of the file
    contents (plus sibling header), so files can be scanned in any order
    or process and merged deterministically afterwards."""
    global _worker_cindex, _worker_cindex_tried
    sf = load_source(abs_path, rel_path)
    sup, bad_sup = suppressions_for(sf)

    cindex = None
    if want_clang:
        if not _worker_cindex_tried:
            _worker_cindex = try_clang_engine()
            _worker_cindex_tried = True
        cindex = _worker_cindex

    file_findings: list[Finding] = []
    if "cloudfog-wallclock" in active:
        file_findings += check_wallclock(sf)
    if "cloudfog-unordered-iter" in active or "cloudfog-pointer-key" in active:
        ast = clang_check_file(cindex, abs_path, sf.path) if cindex else None
        if ast is not None:
            file_findings += [f for f in ast if f.rule in active]
            # The AST engine covers pointer-key decls but not the sort-
            # comparator heuristic; keep the token check for those.
            if "cloudfog-pointer-key" in active:
                file_findings += [f for f in check_pointer_key(sf)
                                  if "comparator" in f.message]
        else:
            if "cloudfog-unordered-iter" in active:
                file_findings += check_unordered_iter(sf, abs_path)
            if "cloudfog-pointer-key" in active:
                file_findings += check_pointer_key(sf)
    if "cloudfog-uninit-pod" in active:
        file_findings += check_uninit_pod(sf)
    if "cloudfog-parallel-shared-write" in active or \
            "cloudfog-float-reduce" in active:
        file_findings += check_parallel_regions(sf, abs_path, active)
    if "cloudfog-float-reduce" in active:
        file_findings += check_float_reduce_loops(sf, abs_path)
    if "cloudfog-raw-rng" in active:
        file_findings += check_raw_rng(sf)
    if "cloudfog-static-mutable" in active:
        file_findings += check_static_mutable(sf)

    sites = collect_metric_sites(sf) if "cloudfog-metric-once" in active else []
    kept = [f for f in file_findings if f.rule not in sup.get(f.line, set())]
    return FileScan(sf.path, kept, bad_sup, sites, sup)


def _scan_file_star(job: tuple) -> FileScan:
    return scan_file(*job)


def resolve_jobs(jobs: int, n_files: int) -> int:
    """0 = auto: one worker per CPU, capped at 8 (the scan is I/O-light and
    per-file cheap, more workers just pay fork cost) and at the file count."""
    if jobs == 0:
        jobs = min(8, os.cpu_count() or 1)
    return max(1, min(jobs, n_files))


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        prog="cloudfog_lint.py",
        description="CloudFog determinism & correctness lint")
    ap.add_argument("paths", nargs="*", default=None,
                    help="files or directories (default: src bench)")
    ap.add_argument("--rule", action="append", default=None, metavar="RULE",
                    help="run only this rule (repeatable)")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--engine", choices=("auto", "token", "clang"), default="auto",
                    help="auto: libclang AST when importable, token otherwise")
    ap.add_argument("--quiet", action="store_true", help="suppress the summary line")
    ap.add_argument("--jobs", type=int, default=1, metavar="N",
                    help="scan N files in parallel (0 = auto; findings are "
                         "identical at any job count)")
    ap.add_argument("--stats", action="store_true",
                    help="print per-rule finding counts (includes zeroes)")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule, desc in RULES.items():
            print(f"{rule:26s} {desc}")
        return 0

    active = set(args.rule) if args.rule else set(RULES)
    unknown = active - set(RULES)
    if unknown:
        print(f"cloudfog_lint: unknown rule(s): {', '.join(sorted(unknown))}",
              file=sys.stderr)
        return 2

    paths = args.paths or ["src", "bench"]
    files = gather_files(paths)
    if not files:
        print("cloudfog_lint: no C++ sources found", file=sys.stderr)
        return 2

    want_clang = args.engine in ("auto", "clang")
    cindex = try_clang_engine() if want_clang else None
    if cindex is None and args.engine == "clang":
        print("cloudfog_lint: libclang unavailable, falling back to the "
              "token engine", file=sys.stderr)
    want_clang = cindex is not None

    jobs = resolve_jobs(args.jobs, len(files))
    work = [(ap_, rp, frozenset(active), want_clang) for ap_, rp in files]
    if jobs > 1:
        import multiprocessing
        with multiprocessing.Pool(jobs) as pool:
            # Merge in input order regardless of completion order, so serial
            # and parallel runs produce byte-identical output.
            scans = pool.map(_scan_file_star, work)
    else:
        # The parent already probed libclang; reuse its handle.
        global _worker_cindex, _worker_cindex_tried
        _worker_cindex, _worker_cindex_tried = cindex, True
        scans = [_scan_file_star(job) for job in work]

    findings: list[Finding] = []
    per_file_sites: dict[str, list[tuple[str, int, str]]] = {}
    suppressed: dict[str, dict[int, set[str]]] = {}
    for scan in scans:
        suppressed[scan.path] = scan.suppressions
        if "cloudfog-nolint" in active:
            findings.extend(scan.bad_suppressions)
        findings.extend(scan.findings)
        if "cloudfog-metric-once" in active:
            per_file_sites[scan.path] = scan.metric_sites

    if "cloudfog-metric-once" in active:
        findings += check_metric_once(per_file_sites, suppressed)

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for f in findings:
        print(f.format())
    if args.stats:
        counts = {rule: 0 for rule in sorted(active)}
        for f in findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        for rule, n in counts.items():
            print(f"cloudfog_lint: stat {rule:32s} {n}", file=sys.stderr)
    if not args.quiet:
        engine = "libclang+token" if want_clang else "token"
        status = f"{len(findings)} finding(s)" if findings else "clean"
        print(f"cloudfog_lint: {len(files)} file(s), engine={engine}, "
              f"jobs={jobs}: {status}", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
