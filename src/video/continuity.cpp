#include "video/continuity.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace cloudfog::video {

double on_time_probability(double latency_ms, double requirement_ms,
                           double jitter_mean_ms) {
  CLOUDFOG_REQUIRE(latency_ms >= 0.0, "negative latency");
  CLOUDFOG_REQUIRE(requirement_ms > 0.0, "requirement must be positive");
  CLOUDFOG_REQUIRE(jitter_mean_ms > 0.0, "jitter mean must be positive");
  const double slack = requirement_ms - latency_ms;
  if (slack <= 0.0) return 0.0;
  return 1.0 - std::exp(-slack / jitter_mean_ms);
}

double delivery_ratio(double throughput_kbps, double bitrate_kbps) {
  CLOUDFOG_REQUIRE(throughput_kbps >= 0.0, "negative throughput");
  CLOUDFOG_REQUIRE(bitrate_kbps > 0.0, "bitrate must be positive");
  return std::min(1.0, throughput_kbps / bitrate_kbps);
}

double packet_continuity(double latency_ms, double requirement_ms,
                         double jitter_mean_ms, double throughput_kbps,
                         double bitrate_kbps) {
  return on_time_probability(latency_ms, requirement_ms, jitter_mean_ms) *
         delivery_ratio(throughput_kbps, bitrate_kbps);
}

void ContinuityMeter::add(double continuity, double packets) {
  CLOUDFOG_REQUIRE(continuity >= 0.0 && continuity <= 1.0, "continuity out of [0,1]");
  CLOUDFOG_REQUIRE(packets >= 0.0, "negative packet count");
  weighted_sum_ += continuity * packets;
  packets_ += packets;
}

double ContinuityMeter::continuity() const {
  return packets_ == 0.0 ? 1.0 : weighted_sum_ / packets_;
}

void ContinuityMeter::reset() {
  weighted_sum_ = 0.0;
  packets_ = 0.0;
}

}  // namespace cloudfog::video
