#include "sim/event_queue.hpp"

#include "util/require.hpp"

namespace cloudfog::sim {

EventId EventQueue::schedule(SimTime at, Callback cb) {
  CLOUDFOG_REQUIRE(at >= 0.0, "cannot schedule before time zero");
  CLOUDFOG_REQUIRE(static_cast<bool>(cb), "null event callback");
  const EventId id = next_id_++;
  heap_.push(Entry{at, next_seq_++, id});
  callbacks_.emplace(id, std::move(cb));
  return id;
}

bool EventQueue::cancel(EventId id) { return callbacks_.erase(id) > 0; }

void EventQueue::drop_dead_entries() {
  while (!heap_.empty() && !callbacks_.contains(heap_.top().id)) heap_.pop();
}

SimTime EventQueue::next_time() {
  drop_dead_entries();
  CLOUDFOG_REQUIRE(!heap_.empty(), "next_time on empty queue");
  return heap_.top().time;
}

EventQueue::PoppedEvent EventQueue::pop() {
  drop_dead_entries();
  CLOUDFOG_REQUIRE(!heap_.empty(), "pop on empty queue");
  const Entry top = heap_.top();
  heap_.pop();
  auto it = callbacks_.find(top.id);
  PoppedEvent out{top.time, top.id, std::move(it->second)};
  callbacks_.erase(it);
  return out;
}

}  // namespace cloudfog::sim
