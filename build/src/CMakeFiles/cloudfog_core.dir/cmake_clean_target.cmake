file(REMOVE_RECURSE
  "libcloudfog_core.a"
)
