// Fixture: must trip cloudfog-metric-once (one name, two registration
// sites). Registry registration is idempotent, so this would silently alias
// two subsystems onto one counter.
namespace fixture {

struct Registry {
  int counter(const char*) { return 0; }
  int gauge(const char*) { return 0; }
};

void subsystem_a(Registry& reg) {
  (void)reg.counter("fixture.duplicated");  // finding (site 1)
  (void)reg.gauge("fixture.unique_gauge");  // ok: single site
}

void subsystem_b(Registry& reg) {
  (void)reg.counter("fixture.duplicated");  // finding (site 2)
  (void)reg.counter("fixture.unique_counter");  // ok: single site
}

}  // namespace fixture
