// Acceptance envelopes: machine-checked bounds on a scenario's outcome.
//
// Every bundled scenario ships an AcceptanceEnvelope — "under this flash
// crowd, continuity stays above 0.90 and no migration storm exceeds 500
// moves per subcycle". The engine evaluates the bounds against the
// scenario's aggregated metrics and reports a signed margin per bound, so
// CI can fail a regression *and* the trend store can watch headroom erode
// long before the hard bound trips.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cloudfog::scenario {

/// One named scalar a scenario run produced (see scenario_metric_names()
/// for the full vocabulary the engine emits).
struct ScenarioMetric {
  std::string name;
  double value = 0.0;
};

/// A bound on one metric: any of min/max may be set.
struct EnvelopeBound {
  std::string metric;
  std::optional<double> min;
  std::optional<double> max;
};

/// One evaluated bound. `margin` is the distance to the nearest violated
/// edge in the metric's own units: positive = headroom, negative = how far
/// outside the envelope the run landed. A bound whose metric the run never
/// produced fails with `metric_found == false`.
struct BoundCheck {
  EnvelopeBound bound;
  double value = 0.0;
  double margin = 0.0;
  bool metric_found = false;
  bool passed = false;
};

struct EnvelopeReport {
  std::vector<BoundCheck> checks;
  bool passed = true;        ///< all bounds held (vacuously true when empty)
  double min_margin = 0.0;   ///< tightest margin across checks (0 when empty)
};

class AcceptanceEnvelope {
 public:
  void require_min(std::string metric, double min);
  void require_max(std::string metric, double max);
  void require(EnvelopeBound bound) { bounds_.push_back(std::move(bound)); }

  const std::vector<EnvelopeBound>& bounds() const { return bounds_; }
  bool empty() const { return bounds_.empty(); }

  EnvelopeReport check(const std::vector<ScenarioMetric>& metrics) const;

 private:
  std::vector<EnvelopeBound> bounds_;
};

/// The metric vocabulary ScenarioEngine emits, in emission order. The
/// scenario-file parser rejects envelope bounds on anything else, so a
/// typo in a config fails at load time instead of silently passing.
const std::vector<std::string>& scenario_metric_names();
bool is_scenario_metric(std::string_view name);

}  // namespace cloudfog::scenario
