// Synthetic ping-latency trace.
//
// The paper samples pairwise communication latency "from the ping latency
// traces from the League of Legends [54] based on each latency's occurrence
// frequency" (§4.1). The trace itself is not distributable, so we rebuild
// its published shape: a histogram over 0–300+ ms dominated by the
// 20–90 ms range with a long tail. PingTrace exposes the two things the
// experiments consume:
//   * per-node access (last-mile) latency — sampled once per node;
//   * per-packet jitter magnitude — drives the continuity metric.
// The "planetlab" profile has a heavier tail, matching the wide-area
// variance observed on the real testbed.
#pragma once

#include <optional>

#include "util/distributions.hpp"
#include "util/rng.hpp"

namespace cloudfog::net {

enum class TraceProfile {
  kLeagueOfLegends,  ///< simulation profile (§4.1, ref. [54])
  kPlanetLab,        ///< wide-area testbed profile (heavier tail)
};

class PingTrace {
 public:
  explicit PingTrace(TraceProfile profile);

  /// Uses a measured RTT histogram (e.g. loaded via net::trace_io from
  /// data/lol_ping_histogram.txt) in place of the synthetic RTT mixture;
  /// access latencies and jitter still follow `base_profile`.
  PingTrace(util::EmpiricalDistribution rtt_histogram, TraceProfile base_profile);

  TraceProfile profile() const { return profile_; }

  /// One-way access-network latency for a node, in ms. Heavy-tailed:
  /// most nodes 3–15 ms, a tail of poorly connected ones.
  double sample_access_latency_ms(util::Rng& rng) const;

  /// End-to-end RTT sample in ms, as the original trace would yield.
  double sample_rtt_ms(util::Rng& rng) const;

  /// Mean of per-packet delay jitter (ms) under an uncongested path.
  double base_jitter_ms() const { return base_jitter_ms_; }

  /// Fraction of trace RTTs at or below `ms` (empirical CDF, analytic
  /// evaluation over the mixture).
  double rtt_fraction_within(double ms, util::Rng& rng, int samples = 4096) const;

 private:
  TraceProfile profile_;
  util::LognormalMixture rtt_mixture_;
  std::optional<util::EmpiricalDistribution> rtt_histogram_;  // overrides mixture
  util::LognormalMixture access_mixture_;
  double base_jitter_ms_;
};

}  // namespace cloudfog::net
