#include "sim/churn.hpp"

#include "util/distributions.hpp"
#include "util/require.hpp"

namespace cloudfog::sim {

ArrivalProcess::ArrivalProcess(Simulator& sim, util::Rng rng, double rate, ArrivalHook hook)
    : sim_(sim), rng_(rng), rate_(rate), hook_(std::move(hook)) {
  CLOUDFOG_REQUIRE(rate >= 0.0, "arrival rate must be non-negative");
  CLOUDFOG_REQUIRE(static_cast<bool>(hook_), "null arrival hook");
  if (rate_ > 0.0) arm();
}

ArrivalProcess::~ArrivalProcess() { stop(); }

void ArrivalProcess::set_rate(double rate) {
  CLOUDFOG_REQUIRE(rate >= 0.0, "arrival rate must be non-negative");
  const bool was_paused = rate_ == 0.0;
  rate_ = rate;
  if (running_ && was_paused && rate_ > 0.0) arm();
  // A lowered (nonzero) rate applies from the next gap; cancelling the
  // in-flight arrival would bias the process.
}

void ArrivalProcess::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(pending_);
}

void ArrivalProcess::arm() {
  const double gap = util::sample_exponential(rng_, rate_);
  pending_ = sim_.schedule_in(gap, [this] {
    if (!running_) return;
    ++arrivals_;
    hook_(sim_.now());
    if (running_ && rate_ > 0.0) arm();
  });
}

}  // namespace cloudfog::sim
