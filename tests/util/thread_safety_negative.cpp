// Compile-FAIL fixture for clang's -Wthread-safety analysis: the unguarded
// write below must be rejected (ctest `thread_safety_negative` builds this
// with -Werror=thread-safety-analysis and expects failure, proving the
// CF_* annotation plumbing is live). Never linked into any target; GCC
// compiles it silently, so the test only runs under clang.
#include "util/annotations.hpp"

namespace cloudfog {

class Account {
 public:
  void deposit_unlocked(int n) {
    balance_ += n;  // BAD: writing CF_GUARDED_BY state without holding mu_
  }

  void deposit(int n) {
    const util::MutexLock lock(mu_);
    balance_ += n;  // fine: lock held for the scope
  }

 private:
  util::Mutex mu_;
  int balance_ CF_GUARDED_BY(mu_) = 0;
};

}  // namespace cloudfog
