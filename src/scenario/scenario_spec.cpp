#include "scenario/scenario_spec.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/table.hpp"

namespace cloudfog::scenario {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

/// Parser state threaded through the per-line handlers.
struct ParseCtx {
  ScenarioSpec* spec = nullptr;
  std::string section;  ///< current [section], "" = top level
  int line_no = 0;
  std::string* error = nullptr;

  bool fail(const std::string& what) {
    *error = "line " + std::to_string(line_no) + ": " + what;
    return false;
  }
};

bool parse_double(ParseCtx& ctx, const std::string& value, double* out) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    return ctx.fail("expected a number, got '" + value + "'");
  }
  *out = v;
  return true;
}

bool parse_int(ParseCtx& ctx, const std::string& value, int* out) {
  double v = 0.0;
  if (!parse_double(ctx, value, &v)) return false;
  *out = static_cast<int>(v);
  return true;
}

bool parse_size(ParseCtx& ctx, const std::string& value, std::size_t* out) {
  double v = 0.0;
  if (!parse_double(ctx, value, &v)) return false;
  if (v < 0.0) return ctx.fail("expected a non-negative count, got '" + value + "'");
  *out = static_cast<std::size_t>(v);
  return true;
}

bool parse_u64(ParseCtx& ctx, const std::string& value, std::uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    return ctx.fail("expected an unsigned integer, got '" + value + "'");
  }
  *out = static_cast<std::uint64_t>(v);
  return true;
}

bool parse_bool(ParseCtx& ctx, const std::string& value, bool* out) {
  if (value == "true" || value == "on" || value == "1") {
    *out = true;
    return true;
  }
  if (value == "false" || value == "off" || value == "0") {
    *out = false;
    return true;
  }
  return ctx.fail("expected true/false, got '" + value + "'");
}

bool handle_top(ParseCtx& ctx, const std::string& key, const std::string& value) {
  ScenarioSpec& s = *ctx.spec;
  if (key == "name") s.name = value;
  else if (key == "description") s.description = value;
  else if (key == "profile") {
    if (value == "peersim") s.profile = core::TestbedProfile::kPeerSim;
    else if (value == "planetlab") s.profile = core::TestbedProfile::kPlanetLab;
    else return ctx.fail("unknown profile '" + value + "' (peersim|planetlab)");
  } else if (key == "players") return parse_size(ctx, value, &s.players);
  else if (key == "supernodes") return parse_size(ctx, value, &s.supernodes);
  else if (key == "cycles") return parse_int(ctx, value, &s.cycles);
  else if (key == "warmup") return parse_int(ctx, value, &s.warmup);
  else if (key == "seed") return parse_u64(ctx, value, &s.seed);
  else if (key == "system_seed") return parse_u64(ctx, value, &s.system_seed);
  else if (key == "workload") {
    if (value == "arrivals") s.daily_sessions = false;
    else if (value == "daily") s.daily_sessions = true;
    else return ctx.fail("unknown workload '" + value + "' (arrivals|daily)");
  } else if (key == "base_arrival_per_minute") {
    return parse_double(ctx, value, &s.base_arrival_per_minute);
  } else if (key == "faults_per_hour") return parse_double(ctx, value, &s.faults_per_hour);
  else if (key == "selection_deadline_ms") {
    return parse_double(ctx, value, &s.selection_deadline_ms);
  } else if (key == "reputation") return parse_bool(ctx, value, &s.reputation);
  else if (key == "rate_adaptation") return parse_bool(ctx, value, &s.rate_adaptation);
  else if (key == "social_assignment") return parse_bool(ctx, value, &s.social_assignment);
  else if (key == "provisioning") return parse_bool(ctx, value, &s.provisioning);
  else return ctx.fail("unknown key '" + key + "'");
  return true;
}

bool handle_flash_crowd(ParseCtx& ctx, const std::string& key, const std::string& value) {
  FlashCrowdPhase& p = ctx.spec->flash_crowd.emplace(
      ctx.spec->flash_crowd.value_or(FlashCrowdPhase{}));
  if (key == "start_hour") return parse_int(ctx, value, &p.start_hour);
  if (key == "ramp_hours") return parse_int(ctx, value, &p.ramp_hours);
  if (key == "plateau_hours") return parse_int(ctx, value, &p.plateau_hours);
  if (key == "decay_hours") return parse_int(ctx, value, &p.decay_hours);
  if (key == "peak_per_minute") return parse_double(ctx, value, &p.peak_per_minute);
  return ctx.fail("unknown flash-crowd key '" + key + "'");
}

bool handle_diurnal(ParseCtx& ctx, const std::string& key, const std::string& value) {
  DiurnalPhase& p = ctx.spec->diurnal.emplace(ctx.spec->diurnal.value_or(DiurnalPhase{}));
  if (key == "regions") return parse_int(ctx, value, &p.regions);
  if (key == "stagger_hours") return parse_double(ctx, value, &p.stagger_hours);
  if (key == "amplitude_per_minute") return parse_double(ctx, value, &p.amplitude_per_minute);
  return ctx.fail("unknown diurnal key '" + key + "'");
}

bool handle_churn_storm(ParseCtx& ctx, const std::string& key, const std::string& value) {
  ChurnStormPhase& p =
      ctx.spec->churn_storm.emplace(ctx.spec->churn_storm.value_or(ChurnStormPhase{}));
  if (key == "start_hour") return parse_int(ctx, value, &p.start_hour);
  if (key == "duration_hours") return parse_int(ctx, value, &p.duration_hours);
  if (key == "departure_fraction") return parse_double(ctx, value, &p.departure_fraction);
  if (key == "pause_arrivals") return parse_bool(ctx, value, &p.pause_arrivals);
  return ctx.fail("unknown churn-storm key '" + key + "'");
}

bool handle_outage(ParseCtx& ctx, const std::string& key, const std::string& value) {
  OutagePhase& p = ctx.spec->outage.emplace(ctx.spec->outage.value_or(OutagePhase{}));
  if (key == "start_hour") return parse_int(ctx, value, &p.start_hour);
  if (key == "duration_hours") return parse_int(ctx, value, &p.duration_hours);
  if (key == "x0_km") return parse_double(ctx, value, &p.box.x0_km);
  if (key == "y0_km") return parse_double(ctx, value, &p.box.y0_km);
  if (key == "x1_km") return parse_double(ctx, value, &p.box.x1_km);
  if (key == "y1_km") return parse_double(ctx, value, &p.box.y1_km);
  if (key == "crash_fraction") return parse_double(ctx, value, &p.crash_fraction);
  if (key == "loss_fraction") return parse_double(ctx, value, &p.loss_fraction);
  if (key == "delay_ms") return parse_double(ctx, value, &p.delay_ms);
  if (key == "partition") return parse_bool(ctx, value, &p.partition);
  return ctx.fail("unknown outage key '" + key + "'");
}

bool handle_adversary(ParseCtx& ctx, const std::string& key, const std::string& value) {
  AdversaryConfig& a = ctx.spec->adversary;
  if (key == "kind") {
    if (!adversary_kind_from_name(value, &a.kind)) {
      return ctx.fail("unknown adversary kind '" + value + "'");
    }
    return true;
  }
  if (key == "fraction") return parse_double(ctx, value, &a.fraction);
  if (key == "delay_ms") return parse_double(ctx, value, &a.delay_ms);
  if (key == "period_cycles") return parse_int(ctx, value, &a.period_cycles);
  if (key == "on_cycles") return parse_int(ctx, value, &a.on_cycles);
  if (key == "whitewash_period_cycles") {
    return parse_int(ctx, value, &a.whitewash_period_cycles);
  }
  if (key == "ring_count") return parse_int(ctx, value, &a.ring_count);
  return ctx.fail("unknown adversary key '" + key + "'");
}

bool handle_mix(ParseCtx& ctx, const std::string& key, const std::string& value) {
  // game.N = weight
  if (key.rfind("game.", 0) != 0) return ctx.fail("mix keys look like game.<index>");
  std::size_t idx = 0;
  {
    ParseCtx sub = ctx;  // reuse the numeric parser with the same line number
    if (!parse_size(sub, key.substr(5), &idx)) return ctx.fail("bad game index in '" + key + "'");
  }
  double weight = 0.0;
  if (!parse_double(ctx, value, &weight)) return false;
  if (ctx.spec->game_mix.size() <= idx) ctx.spec->game_mix.resize(idx + 1, 0.0);
  ctx.spec->game_mix[idx] = weight;
  return true;
}

bool handle_envelope(ParseCtx& ctx, const std::string& key, const std::string& value) {
  // <metric>.min / <metric>.max
  const std::size_t dot = key.rfind('.');
  if (dot == std::string::npos) {
    return ctx.fail("envelope keys look like <metric>.min or <metric>.max");
  }
  const std::string metric = key.substr(0, dot);
  const std::string edge = key.substr(dot + 1);
  if (!is_scenario_metric(metric)) {
    return ctx.fail("unknown envelope metric '" + metric + "'");
  }
  double bound = 0.0;
  if (!parse_double(ctx, value, &bound)) return false;
  if (edge == "min") ctx.spec->envelope.require_min(metric, bound);
  else if (edge == "max") ctx.spec->envelope.require_max(metric, bound);
  else return ctx.fail("envelope edge must be min or max, got '" + edge + "'");
  return true;
}

bool validate(ParseCtx& ctx) {
  const ScenarioSpec& s = *ctx.spec;
  if (s.players == 0) return ctx.fail("players must be positive");
  if (s.supernodes == 0) return ctx.fail("supernodes must be positive");
  if (s.cycles < 1) return ctx.fail("cycles must be >= 1");
  if (s.warmup < 0 || s.warmup >= s.cycles) {
    return ctx.fail("warmup must leave at least one measured cycle");
  }
  if (s.base_arrival_per_minute < 0.0) return ctx.fail("arrival rate must be >= 0");
  if (s.faults_per_hour < 0.0) return ctx.fail("faults_per_hour must be >= 0");
  if (s.adversary.fraction < 0.0 || s.adversary.fraction > 1.0) {
    return ctx.fail("adversary fraction must be within [0, 1]");
  }
  const int horizon_hours = s.cycles * 24;
  if (s.outage &&
      (s.outage->start_hour < 0 || s.outage->start_hour >= horizon_hours ||
       s.outage->duration_hours < 1)) {
    return ctx.fail("outage window must fit the run horizon");
  }
  if (s.churn_storm &&
      (s.churn_storm->start_hour < 0 || s.churn_storm->start_hour >= horizon_hours)) {
    return ctx.fail("churn storm must start inside the run horizon");
  }
  return true;
}

}  // namespace

bool parse_scenario(const std::string& text, ScenarioSpec* out, std::string* error) {
  *out = ScenarioSpec{};
  ParseCtx ctx;
  ctx.spec = out;
  ctx.error = error;

  std::istringstream in(text);
  std::string raw;
  while (std::getline(in, raw)) {
    ++ctx.line_no;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw = raw.substr(0, hash);
    const std::string line = trim(raw);
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']') return ctx.fail("unterminated section header");
      ctx.section = trim(line.substr(1, line.size() - 2));
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) return ctx.fail("expected key = value");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty()) return ctx.fail("empty key");

    bool ok = false;
    if (ctx.section.empty()) ok = handle_top(ctx, key, value);
    else if (ctx.section == "phase.flash_crowd") ok = handle_flash_crowd(ctx, key, value);
    else if (ctx.section == "phase.diurnal") ok = handle_diurnal(ctx, key, value);
    else if (ctx.section == "phase.churn_storm") ok = handle_churn_storm(ctx, key, value);
    else if (ctx.section == "phase.outage") ok = handle_outage(ctx, key, value);
    else if (ctx.section == "adversary") ok = handle_adversary(ctx, key, value);
    else if (ctx.section == "mix") ok = handle_mix(ctx, key, value);
    else if (ctx.section == "envelope") ok = handle_envelope(ctx, key, value);
    else return ctx.fail("unknown section [" + ctx.section + "]");
    if (!ok) return false;
  }
  return validate(ctx);
}

bool load_scenario_file(const std::string& path, ScenarioSpec* out, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = path + ": cannot open";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!parse_scenario(buf.str(), out, error)) {
    *error = path + ": " + *error;
    return false;
  }
  return true;
}

const std::vector<std::string>& bundled_scenario_names() {
  static const std::vector<std::string> kNames = {
      "flash-crowd", "regional-outage", "churn-storm",
      "whitewash",   "collusion",       "on-off",
  };
  return kNames;
}

ScenarioSpec chaos_scenario(core::TestbedProfile profile, double faults_per_hour,
                            const core::ExperimentScale& scale) {
  ScenarioSpec spec;
  spec.name = "chaos-" + util::format_double(faults_per_hour, 2);
  spec.description = "Mixed background fault schedule at a fixed arrival rate";
  spec.profile = profile;
  const core::TestbedConfig tb = profile == core::TestbedProfile::kPeerSim
                                     ? core::TestbedConfig::peersim()
                                     : core::TestbedConfig::planetlab();
  spec.players = tb.player_count;
  spec.supernodes = profile == core::TestbedProfile::kPeerSim ? 600 : 30;
  spec.cycles = scale.cycles;
  spec.warmup = scale.warmup;
  spec.seed = scale.seed;
  spec.system_seed = scale.seed + 81;  // the legacy core::chaos_sweep arm seed
  spec.daily_sessions = true;
  spec.reputation = spec.rate_adaptation = true;
  spec.social_assignment = spec.provisioning = true;  // cloudfog_advanced_config
  spec.selection_deadline_ms = 700.0;
  spec.faults_per_hour = faults_per_hour;
  return spec;
}

}  // namespace cloudfog::scenario
