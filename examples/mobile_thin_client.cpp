// Thin-client rate adaptation walkthrough: a mobile player on a
// fluctuating link streams an RTS (90 ms budget, quality level 4). The
// receiver-driven adapter (§3.3) steps the encoding bitrate down when the
// buffer drains under congestion and back up when the link recovers.
//
//   $ ./mobile_thin_client
#include <iostream>

#include "game/game_catalog.hpp"
#include "util/table.hpp"
#include "video/stream_session.hpp"

int main() {
  using namespace cloudfog;

  const auto catalog = game::GameCatalog::paper_default();
  const game::GameId rts = 3;  // EmpireForge — level 4, 1200 kbps, 90 ms

  video::RateAdapterConfig adapter_cfg;
  adapter_cfg.consecutive_required = 3;
  // A single stream has no bottleneck-sharing peers, so deterministic and
  // prompt up-switching makes the walkthrough easy to follow.
  adapter_cfg.consecutive_up_required = 3;
  adapter_cfg.up_probability = 1.0;
  video::StreamSession session(catalog, rts, adapter_cfg);

  // A link that congests in the middle of the session: plenty of headroom,
  // then a throttled stretch at 600 kbps, then recovery.
  auto link_kbps = [](int t) -> double {
    if (t < 20) return 2000.0;
    if (t < 50) return 600.0;  // congestion episode
    return 2500.0;             // recovery
  };

  util::Table table("Receiver-driven adaptation on a congested mobile link");
  table.set_header({"t (s)", "link (kbps)", "encoding (kbps)", "quality", "continuity"});
  for (int t = 0; t < 80; t += 2) {
    video::PathObservation path;
    path.response_latency_ms = 60.0;
    path.video_latency_ms = 25.0;
    path.jitter_mean_ms = 8.0;
    path.throughput_kbps = link_kbps(t);
    path.interval_s = 2.0;
    const auto sample = session.observe(path);
    if (t % 8 == 0) {
      table.add_row({std::to_string(t), util::format_double(link_kbps(t), 0),
                     util::format_double(sample.bitrate_kbps, 0),
                     std::to_string(session.current_quality_level()),
                     util::format_double(sample.continuity, 3)});
    }
  }
  table.print(std::cout);

  std::cout << "Session continuity: " << util::format_double(session.session_continuity(), 3)
            << (session.satisfied() ? " (satisfied)" : " (not satisfied)") << "\n"
            << "The adapter trades resolution for fluency during the congested\n"
               "stretch instead of letting the buffer starve.\n";
  return 0;
}
