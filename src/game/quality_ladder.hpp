// Video quality ladder (paper Table 2).
//
//   level  resolution   bitrate   latency requirement  tolerance ρ
//     5    1280×720     1800 kbps       110 ms             1.0
//     4     720×486     1200 kbps        90 ms             0.9
//     3     640×480      800 kbps        70 ms             0.8
//     2     384×260      500 kbps        50 ms             0.7
//     1     288×260      300 kbps        30 ms             0.6
//
// A game with latency requirement L streams at the highest level whose
// requirement is ≤ L; under congestion the receiver-driven adapter walks
// down the ladder (§3.3). β (Eq. 11) is the largest relative bitrate step.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace cloudfog::game {

struct QualityLevel {
  int level = 0;  ///< 1 (lowest) … 5 (highest)
  int width = 0;
  int height = 0;
  double bitrate_kbps = 0.0;
  double latency_requirement_ms = 0.0;
  double latency_tolerance = 1.0;  ///< ρ ∈ (0, 1]
};

class QualityLadder {
 public:
  /// The paper's Table 2 ladder.
  static QualityLadder paper_default();

  /// Custom ladder; levels must be sorted ascending by level number with
  /// strictly increasing bitrate.
  explicit QualityLadder(std::vector<QualityLevel> levels);

  std::size_t size() const { return levels_.size(); }
  int min_level() const { return levels_.front().level; }
  int max_level() const { return levels_.back().level; }

  const QualityLevel& at_level(int level) const;

  /// Highest level whose latency requirement ≤ `latency_ms` — the level a
  /// game with that requirement streams at. Falls back to the lowest
  /// level if even that is too slow.
  const QualityLevel& level_for_latency(double latency_ms) const;

  /// One level up/down, clamped at the ladder ends.
  const QualityLevel& step_up(int level) const;
  const QualityLevel& step_down(int level) const;

  /// β = max_i (b_{i+1} − b_i) / b_i (Eq. 11).
  double adjust_up_factor() const;

 private:
  std::vector<QualityLevel> levels_;  // ascending by level
};

/// Frame rate used throughout the evaluation (OnLive streams at 30 fps).
inline constexpr double kFramesPerSecond = 30.0;

/// Size of one video frame in bits at the given bitrate.
double frame_bits(double bitrate_kbps);

}  // namespace cloudfog::game
