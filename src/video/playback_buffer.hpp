// Client-side playback buffer (paper Eq. 8).
//
// The receiver estimates its buffered video as
//   s(t_k) = s(t_{k-1}) + (t_k − t_{k-1}) · (d(t_k) − b_p(t_k))
// where d is the downloading rate and b_p the playback rate, both in
// bits/s. The buffer is clamped to [0, capacity]: playback stalls at 0
// (the deficit is reported for continuity accounting) and the sender
// stops bursting ahead at capacity.
#pragma once

namespace cloudfog::video {

class PlaybackBuffer {
 public:
  /// `capacity_bits` bounds how far ahead the sender may burst.
  explicit PlaybackBuffer(double capacity_bits);

  double buffered_bits() const { return bits_; }
  double capacity_bits() const { return capacity_; }

  struct StepResult {
    double buffered_bits = 0.0;
    /// Bits of playback demand that could not be served this step
    /// (buffer underrun); zero when playback was continuous.
    double starved_bits = 0.0;
    /// Download bits discarded because the buffer was already full.
    double overflow_bits = 0.0;
  };

  /// Advances the buffer by `dt` seconds with downloading rate
  /// `download_bps` and playback rate `playback_bps`.
  StepResult step(double dt, double download_bps, double playback_bps);

  /// Rewrites the capacity (after a bitrate switch); clamps contents.
  void set_capacity(double capacity_bits);

  void clear() { bits_ = 0.0; }

 private:
  double capacity_;
  double bits_ = 0.0;
};

}  // namespace cloudfog::video
