// Run report exporter: serializes everything the recorder accumulated —
// run summaries (with percentiles), counters, gauges, histograms, the
// per-phase wall-clock profile and trace statistics — into one JSON
// document. Schema documented in DESIGN.md §Observability.
#pragma once

#include <ostream>

#include "obs/recorder.hpp"

namespace cloudfog::obs {

/// Report schema identifier, bumped on breaking changes.
inline constexpr const char* kReportSchema = "cloudfog.run_report/1";

void write_report_json(std::ostream& os, const Recorder& recorder);

}  // namespace cloudfog::obs
