#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace cloudfog::util {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return count_ == 0 ? 0.0 : min_; }

double RunningStats::max() const { return count_ == 0 ? 0.0 : max_; }

void SampleSet::add(double x) {
  samples_.push_back(x);
  dirty_ = true;
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double acc = 0.0;
  for (double s : samples_) acc += s;
  return acc / static_cast<double>(samples_.size());
}

double SampleSet::percentile(double p) const {
  CLOUDFOG_REQUIRE(p >= 0.0 && p <= 1.0, "percentile out of [0,1]");
  CLOUDFOG_REQUIRE(!samples_.empty(), "percentile of empty sample set");
  if (dirty_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    dirty_ = false;
  }
  const double rank = p * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] + frac * (sorted_[hi] - sorted_[lo]);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  CLOUDFOG_REQUIRE(hi > lo, "histogram range inverted");
  CLOUDFOG_REQUIRE(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) {
  auto bin = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  bin = std::clamp<std::ptrdiff_t>(bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

std::size_t Histogram::count(std::size_t bin) const {
  CLOUDFOG_REQUIRE(bin < counts_.size(), "histogram bin out of range");
  return counts_[bin];
}

double Histogram::cdf(double x) const {
  if (total_ == 0) return 0.0;
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  const double pos = (x - lo_) / width_;
  const auto full = static_cast<std::size_t>(pos);
  std::size_t below = 0;
  for (std::size_t i = 0; i < full && i < counts_.size(); ++i) below += counts_[i];
  double acc = static_cast<double>(below);
  if (full < counts_.size()) {
    acc += (pos - static_cast<double>(full)) * static_cast<double>(counts_[full]);
  }
  return acc / static_cast<double>(total_);
}

double Histogram::bin_low(std::size_t bin) const {
  CLOUDFOG_REQUIRE(bin < counts_.size(), "histogram bin out of range");
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_high(std::size_t bin) const { return bin_low(bin) + width_; }

}  // namespace cloudfog::util
