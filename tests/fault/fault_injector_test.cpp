#include "fault/fault_injector.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace cloudfog::fault {
namespace {

FaultSpec spec_of(FaultKind kind, double at_s, double duration_s,
                  std::size_t target = kAnyTarget, double magnitude = 0.0) {
  FaultSpec s;
  s.kind = kind;
  s.at_s = at_s;
  s.duration_s = duration_s;
  s.target = target;
  s.magnitude = magnitude;
  return s;
}

/// Harness with no crash machinery: crash hooks abort the test if called.
struct Harness {
  sim::Simulator sim;
  FaultState state;
  FaultInjector injector;

  explicit Harness(std::vector<FaultSpec> specs, std::size_t supernodes = 8,
                   std::size_t regions = 4)
      : injector(sim, state, FaultPlan::from_specs(std::move(specs)),
                 [](const FaultSpec&) -> std::size_t {
                   ADD_FAILURE() << "unexpected crash apply";
                   return kAnyTarget;
                 },
                 [](const FaultSpec&, std::size_t) {
                   ADD_FAILURE() << "unexpected crash clear";
                 }) {
    state.resize(supernodes, regions);
    injector.arm();
  }
};

TEST(FaultInjector, SlowNodeAppliesAndClearsOnSchedule) {
  Harness h({spec_of(FaultKind::kSlowNode, 10.0, 20.0, /*target=*/3, /*magnitude=*/80.0)});

  h.sim.run_until(9.0);
  EXPECT_FALSE(h.state.any_active());
  EXPECT_DOUBLE_EQ(h.state.slow_ms(3), 0.0);

  h.sim.run_until(10.5);
  EXPECT_TRUE(h.state.any_active());
  EXPECT_DOUBLE_EQ(h.state.slow_ms(3), 80.0);
  EXPECT_EQ(h.injector.injected(), 1u);
  EXPECT_EQ(h.injector.active_count(), 1u);

  h.sim.run_until(31.0);
  EXPECT_FALSE(h.state.any_active());
  EXPECT_DOUBLE_EQ(h.state.slow_ms(3), 0.0);
  EXPECT_EQ(h.injector.cleared(), 1u);
  EXPECT_EQ(h.injector.active_count(), 0u);
}

TEST(FaultInjector, OverlappingLossBurstsComposeAndClearIndependently) {
  Harness h({spec_of(FaultKind::kPacketLossBurst, 0.0, 100.0, kAnyTarget, 0.2),
             spec_of(FaultKind::kPacketLossBurst, 50.0, 100.0, kAnyTarget, 0.5)});

  h.sim.run_until(10.0);
  EXPECT_DOUBLE_EQ(h.state.channel().update_loss, 0.2);

  // Both active: independent drops compose as 1 - (1-a)(1-b).
  h.sim.run_until(60.0);
  EXPECT_DOUBLE_EQ(h.state.channel().update_loss, 1.0 - 0.8 * 0.5);
  EXPECT_EQ(h.injector.active_count(), 2u);

  // First burst ends at t=100; the rebuild must leave only the second.
  h.sim.run_until(110.0);
  EXPECT_DOUBLE_EQ(h.state.channel().update_loss, 0.5);
  EXPECT_TRUE(h.state.any_active());

  h.sim.run_until(200.0);
  EXPECT_DOUBLE_EQ(h.state.channel().update_loss, 0.0);
  EXPECT_FALSE(h.state.any_active());
  EXPECT_EQ(h.injector.injected(), 2u);
  EXPECT_EQ(h.injector.cleared(), 2u);
}

TEST(FaultInjector, BlackholeAndPartitionProjectThroughTheState) {
  Harness h({spec_of(FaultKind::kProbeBlackhole, 5.0, 50.0, /*target=*/2),
             [] {
               FaultSpec s = spec_of(FaultKind::kNetworkPartition, 5.0, 50.0, /*target=*/0);
               s.target_b = 1;
               return s;
             }()});
  h.state.set_supernode_region(6, 1);  // supernode 6 lives in region 1

  h.sim.run_until(6.0);
  EXPECT_TRUE(h.state.blackholed(2));
  EXPECT_FALSE(h.state.blackholed(3));
  EXPECT_TRUE(h.state.regions_partitioned(0, 1));
  EXPECT_TRUE(h.state.regions_partitioned(1, 0));  // symmetric
  EXPECT_FALSE(h.state.regions_partitioned(0, 2));
  EXPECT_TRUE(h.state.partitioned_from_supernode(/*player_region=*/0, /*supernode=*/6));

  h.sim.run_until(60.0);
  EXPECT_FALSE(h.state.blackholed(2));
  EXPECT_FALSE(h.state.regions_partitioned(0, 1));
}

TEST(FaultInjector, CrashHookResolvesWildcardAndClearNamesTheSameVictim) {
  sim::Simulator sim;
  FaultState state;
  state.resize(8, 2);
  std::vector<std::size_t> applied;
  std::vector<std::size_t> cleared;
  FaultInjector injector(
      sim, state,
      FaultPlan::from_specs({spec_of(FaultKind::kSupernodeCrash, 10.0, 30.0)}),
      [&](const FaultSpec& spec) -> std::size_t {
        EXPECT_EQ(spec.target, kAnyTarget);
        applied.push_back(5);  // the hook picks the victim
        return 5;
      },
      [&](const FaultSpec&, std::size_t target) { cleared.push_back(target); });
  injector.arm();

  sim.run_until(20.0);
  ASSERT_EQ(applied.size(), 1u);
  EXPECT_EQ(injector.injected(), 1u);
  // Crashes are hook-owned: the projection flags faults in flight (the
  // data path uses this to price probes to dead nodes) but carries no
  // impairment entries of its own for the crash.
  EXPECT_TRUE(state.any_active());
  EXPECT_FALSE(state.blackholed(5));
  EXPECT_DOUBLE_EQ(state.slow_ms(5), 0.0);

  sim.run_until(50.0);
  ASSERT_EQ(cleared.size(), 1u);
  EXPECT_EQ(cleared[0], 5u);  // clear names the resolved victim, not kAnyTarget
  EXPECT_EQ(injector.cleared(), 1u);
}

TEST(FaultInjector, CrashWithNoVictimIsDroppedWithoutAClear) {
  sim::Simulator sim;
  FaultState state;
  state.resize(4, 2);
  int clears = 0;
  FaultInjector injector(
      sim, state, FaultPlan::from_specs({spec_of(FaultKind::kSupernodeCrash, 1.0, 10.0)}),
      [](const FaultSpec&) -> std::size_t { return kAnyTarget; },  // nobody to kill
      [&](const FaultSpec&, std::size_t) { ++clears; });
  injector.arm();

  sim.run_until(100.0);
  EXPECT_EQ(injector.injected(), 0u);
  EXPECT_EQ(injector.cleared(), 0u);
  EXPECT_EQ(injector.active_count(), 0u);
  EXPECT_EQ(clears, 0);
}

}  // namespace
}  // namespace cloudfog::fault
