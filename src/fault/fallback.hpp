// Hysteresis for the cloud-fallback degradation path.
//
// When migration exhausts its deadline budget the session falls back to
// direct cloud streaming — the always-available but higher-latency path.
// Without hysteresis, the hourly cloud→fog retry would bounce the session
// straight back to a fog that is still churning ("flapping"), paying a
// migration interruption each bounce. The governor blocks the return until
// (a) the session has sat in fallback for a minimum residency, and (b) the
// candidate set — approximated by fleet membership — has been stable for a
// configurable window.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cloudfog::fault {

struct FallbackConfig {
  /// Minimum time a session stays on the cloud after a fault-driven
  /// fallback before a fog return may be considered (seconds).
  double min_residency_s = 3600.0;
  /// The fleet (candidate set) must have been free of crashes/recoveries
  /// for this long before fallback sessions may return to fog (seconds).
  double stability_window_s = 7200.0;
};

class FallbackGovernor {
 public:
  explicit FallbackGovernor(FallbackConfig cfg = {}) : cfg_(cfg) {}

  void resize(std::size_t players) { entered_at_.assign(players, kNotInFallback); }

  /// Records a fleet membership change (crash, recovery, withdrawal) —
  /// restarts the stability window for everyone.
  void note_fleet_change(double t_s) { last_fleet_change_s_ = t_s; }

  /// Player entered fault-driven cloud fallback at time `t_s`.
  void enter(std::size_t player, double t_s) {
    if (player >= entered_at_.size()) return;
    if (entered_at_[player] == kNotInFallback) ++entries_;
    entered_at_[player] = t_s;
  }

  /// Player returned to fog (or left); forgets the fallback state.
  void exit(std::size_t player) {
    if (player < entered_at_.size() && entered_at_[player] != kNotInFallback) {
      entered_at_[player] = kNotInFallback;
      ++exits_;
    }
  }

  bool in_fallback(std::size_t player) const {
    return player < entered_at_.size() && entered_at_[player] != kNotInFallback;
  }

  /// True while hysteresis forbids this player's return to fog.
  bool blocked(std::size_t player, double t_s) const {
    if (!in_fallback(player)) return false;
    if (t_s - entered_at_[player] < cfg_.min_residency_s) return true;
    return t_s - last_fleet_change_s_ < cfg_.stability_window_s;
  }

  std::size_t active_count() const {
    std::size_t n = 0;
    for (const double t : entered_at_) n += (t != kNotInFallback) ? 1 : 0;
    return n;
  }

  std::uint64_t entries() const { return entries_; }
  std::uint64_t exits() const { return exits_; }
  const FallbackConfig& config() const { return cfg_; }

 private:
  static constexpr double kNotInFallback = -1.0;

  FallbackConfig cfg_;
  std::vector<double> entered_at_;
  double last_fleet_change_s_ = -1.0e18;  ///< "stable forever" until a change
  std::uint64_t entries_ = 0;
  std::uint64_t exits_ = 0;
};

}  // namespace cloudfog::fault
