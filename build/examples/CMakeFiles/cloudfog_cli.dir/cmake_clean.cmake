file(REMOVE_RECURSE
  "CMakeFiles/cloudfog_cli.dir/cloudfog_cli.cpp.o"
  "CMakeFiles/cloudfog_cli.dir/cloudfog_cli.cpp.o.d"
  "cloudfog_cli"
  "cloudfog_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudfog_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
