// entities.hpp holds plain aggregates; this translation unit compiles the
// header standalone (catches missing includes).
#include "core/entities.hpp"
