// Executes a FaultPlan against a live simulation.
//
// arm() schedules one inject event per spec on the owning sim::Simulator;
// a timed fault schedules its clear event the moment it is applied. The
// injector keeps the active-fault list and rebuilds the FaultState
// projection on every change, so overlapping faults compose and clear in
// any order. Crash faults are delegated to the apply/clear hooks (the
// System owns supernode liveness and the displacement machinery); the hook
// resolves kAnyTarget victims and returns the concrete target so the
// matching clear names the same node.
//
// Every apply/clear emits a kFaultInjected / kFaultCleared trace event and
// bumps the fault.injected / fault.cleared counters — the replayable
// chaos log the acceptance criteria check byte-for-byte.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "fault/fault_plan.hpp"
#include "fault/fault_state.hpp"
#include "sim/simulator.hpp"

namespace cloudfog::fault {

class FaultInjector {
 public:
  /// Called when a crash fault fires; receives the spec and returns the
  /// resolved victim (may differ from spec.target when it is kAnyTarget).
  /// Returning kAnyTarget means no victim was available; the fault is
  /// dropped and no clear is scheduled.
  using ApplyHook = std::function<std::size_t(const FaultSpec&)>;
  /// Called when a timed crash fault clears, with the resolved victim.
  using ClearHook = std::function<void(const FaultSpec&, std::size_t target)>;

  FaultInjector(sim::Simulator& sim, FaultState& state, FaultPlan plan,
                ApplyHook on_crash, ClearHook on_crash_cleared);

  /// Schedules every spec in the plan. Call once, before running the sim.
  void arm();

  std::uint64_t injected() const { return injected_; }
  std::uint64_t cleared() const { return cleared_; }
  std::size_t active_count() const { return active_.size(); }
  const FaultPlan& plan() const { return plan_; }

 private:
  struct ActiveFault {
    FaultSpec spec;
    std::size_t resolved_target = kAnyTarget;
    std::uint64_t id = 0;  ///< stable handle linking apply to clear
  };

  void apply(const FaultSpec& spec);
  void clear(std::uint64_t id);
  /// Re-derives the FaultState projection from `active_` (crashes excluded:
  /// they live in SupernodeState::failed, owned by the hooks).
  void rebuild_state();
  void emit(bool injected, const FaultSpec& spec, std::size_t target);

  sim::Simulator& sim_;
  FaultState& state_;
  FaultPlan plan_;
  ApplyHook on_crash_;
  ClearHook on_crash_cleared_;
  std::vector<ActiveFault> active_;
  std::uint64_t next_id_ = 1;
  std::uint64_t injected_ = 0;
  std::uint64_t cleared_ = 0;
  bool armed_ = false;
};

}  // namespace cloudfog::fault
