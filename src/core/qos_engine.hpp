// Per-subcycle QoS evaluation.
//
// Given the current player→entity assignments, the engine advances every
// streaming session through `substeps` adaptation intervals. Each interval
// it (1) tallies the video bitrate demanded from every serving entity,
// (2) derives each stream's sustainable throughput — the minimum of the
// RTT-limited WAN rate, the player's downlink, and a proportional share of
// the entity's uplink — and the congestion state of the entity, and
// (3) feeds the resulting path observation to the session, which updates
// its rate adapter and continuity. Response latency is assembled per
// architecture:
//
//   Cloud direct : playout + state + x-server + dc→p           + transfer
//   CloudFog     : playout + state + x-server + render + sn→p  + transfer
//   CDN/EdgeCloud: playout + state + coop     + render + cdn→p + transfer
//
// (Upstream action and cloud→supernode update messages are small and fast
// and are excluded per the paper's §3.1 observation that uploading "does
// not seriously affect the response latency".)
//
// where `transfer` is the frame transmission time inflated by the queueing
// factor u/(1−u) of the entity's uplink, and jitter (which drives the
// continuity probability) inflates linearly with utilization.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/cloud.hpp"
#include "core/entities.hpp"
#include "fault/fault_state.hpp"
#include "game/game_catalog.hpp"
#include "net/latency_model.hpp"
#include "obs/recorder.hpp"
#include "util/shard_pool.hpp"
#include "video/qoe.hpp"

namespace cloudfog::core {

struct QosEngineConfig {
  double playout_processing_ms = 20.0;  ///< client playout + cloud processing
  double state_compute_ms = 5.0;        ///< game-state computation time
  double render_ms = 3.0;               ///< video rendering at supernode/CDN
  /// EdgeCloud inter-server state sync: one wide-area round trip between
  /// the edge servers hosting two interacting players (~45 ms for
  /// metro-to-metro distances on this plane).
  double cdn_cooperation_ms = 45.0;
  double update_feed_kbps = 200.0;      ///< Λ — cloud→supernode update stream
  double burst_headroom = 1.5;          ///< sender may run ahead of realtime
  double max_queue_factor = 4.0;        ///< cap on u/(1−u) inflation
  double jitter_inflation = 2.0;        ///< jitter multiplier at u = 1
  double base_jitter_ms = 6.0;          ///< uncongested per-packet jitter mean
  /// Jitter grows with path length (more queues to cross): the mean gains
  /// this fraction of the path RTT.
  double path_jitter_fraction = 0.08;
  int substeps = 6;                     ///< adaptation intervals per subcycle
  double substep_seconds = 2.0;         ///< adapter estimation interval
  /// Path-term & observation memoization (exact caches, DESIGN.md §10).
  /// false = reference mode: recompute everything every substep — the
  /// engine of record for the memo equality test and the tracked bench
  /// baseline. Both modes produce byte-identical results.
  bool memoize = true;
  /// Worker threads for the per-player pass. 0 = read CLOUDFOG_THREADS
  /// (default 1); 1 = serial. Results and trace bytes are identical at
  /// every thread count (fixed sharding + shard-order obs replay).
  int threads = 0;
};

/// Aggregate results of one subcycle (averaged over substeps & sessions).
struct SubcycleQos {
  double avg_response_latency_ms = 0.0;
  double avg_server_latency_ms = 0.0;  ///< the inter-server component alone
  double avg_continuity = 1.0;
  double satisfied_fraction = 1.0;  ///< players with subcycle continuity ≥ 95 %
  double avg_mos = 5.0;             ///< mean opinion score (QoE extension)
  double cloud_egress_mbps = 0.0;   ///< DC video streams + supernode update feeds
  std::size_t online_sessions = 0;
  std::size_t fog_served = 0;
  std::size_t cloud_served = 0;
  std::size_t cdn_served = 0;
};

class QosEngine {
 public:
  QosEngine(QosEngineConfig cfg, const net::LatencyModel& latency,
            const game::GameCatalog& catalog);

  const QosEngineConfig& config() const { return cfg_; }

  /// Attaches the live fault projection (nullptr detaches). Active slow
  /// nodes, partitions and update-channel impairments then degrade the
  /// fog-served paths.
  void set_fault_state(const fault::FaultState* faults) { faults_ = faults; }

  /// Advances one subcycle. Mutates sessions (adaptation, continuity) and
  /// the demand tallies on entities.
  SubcycleQos run_subcycle(std::vector<PlayerState>& players,
                           std::vector<SupernodeState>& fleet, Cloud& cloud,
                           std::vector<CdnServerState>& cdn) const;

  /// Deterministic response latency for a player served by `ref`, at the
  /// given bitrate, with both endpoints' queueing at zero. Used for
  /// coverage computation and join-time sanity checks.
  double unloaded_response_latency_ms(const PlayerState& player, const ServingRef& ref,
                                      const std::vector<SupernodeState>& fleet,
                                      const Cloud& cloud,
                                      const std::vector<CdnServerState>& cdn,
                                      double bitrate_kbps) const;

  /// Resolved worker-thread count (config > CLOUDFOG_THREADS > 1).
  int threads() const { return threads_; }

 private:
  struct EntityLoad {
    double offered_mbps = 0.0;
    double demanded_kbps = 0.0;

    double utilization() const;
    double queue_factor(double cap) const;
    /// Proportional share of the uplink for a stream of `bitrate_kbps`.
    double share_kbps(double bitrate_kbps) const;
  };

  /// Per-player accumulators across the subcycle's substeps.
  struct Acc {
    double latency_sum = 0.0;
    double continuity_sum = 0.0;
    double bitrate_sum = 0.0;
    int samples = 0;
  };

  /// Tier-1 memo: pure (player endpoint, serving endpoint) quantities.
  /// Valid while the serving ref and both endpoints are bit-unchanged —
  /// endpoints are immutable, so this invalidates exactly on migration /
  /// serving change.
  struct PathTerms {
    ServingRef ref{};
    net::Endpoint player_ep{};
    net::Endpoint entity_ep{};
    double one_way_ms = 0.0;  ///< entity → player (order used by video/base terms)
    double rtt_ms = 0.0;      ///< player ↔ entity
    double wan_kbps = 0.0;    ///< RTT-limited WAN throughput (kbps)
    bool valid = false;
  };

  /// Tier-2 memo: the full path observation, valid while every input that
  /// feeds the transfer/jitter/continuity arithmetic is bit-unchanged.
  /// Values are compared exactly, so a hit reproduces the recomputation
  /// bit for bit.
  struct ObsMemo {
    game::GameId game = 0;
    double bitrate = -1.0;
    double offered_mbps = -1.0;
    double demanded_kbps = -1.0;
    double cross_server_ms = -1.0;
    double sabotage_ms = -1.0;
    double fault_response_ms = -1.0;
    double fault_video_ms = -1.0;
    double fault_loss = -1.0;
    video::PathObservation path{};
    double continuity = 0.0;
    bool valid = false;
  };

  struct PlayerMemo {
    PathTerms terms;
    ObsMemo obs;
  };

  /// One player's substep: path computation (through the memo tiers) and
  /// session update into `acc`. Touches only `player`, `memo`, `acc` and
  /// shared *immutable* state — safe to run on parallel shards.
  CF_PARALLEL_REGION void evaluate_player(PlayerState& player, PlayerMemo& memo, Acc& acc,
                       const std::vector<SupernodeState>& fleet, const Cloud& cloud,
                       const std::vector<CdnServerState>& cdn) const;

  /// Latency from propagation and processing only (no transfer/queueing).
  double base_latency_ms(const PlayerState& player, const ServingRef& ref,
                         const std::vector<SupernodeState>& fleet, const Cloud& cloud,
                         const std::vector<CdnServerState>& cdn) const;

  const net::Endpoint& serving_endpoint(const ServingRef& ref,
                                        const std::vector<SupernodeState>& fleet,
                                        const Cloud& cloud,
                                        const std::vector<CdnServerState>& cdn) const;

  QosEngineConfig cfg_;
  const net::LatencyModel& latency_;
  const game::GameCatalog& catalog_;
  video::QoeModel qoe_;
  const fault::FaultState* faults_ = nullptr;
  int threads_ = 1;

  // Subcycle scratch + memo state, reused across calls. The engine's
  // driver is single-threaded (run_subcycle is not reentrant); while the
  // parallel pass is in flight, shards write only their own slots of the
  // CF_SHARD_LOCAL containers (indexed through the work list) and read
  // the CF_SHARD_SHARED_READONLY work list, which pass 2 never mutates.
  CF_SHARD_LOCAL mutable std::vector<Acc> acc_;
  CF_SHARD_SHARED_READONLY mutable std::vector<std::uint32_t> work_;
  CF_SHARD_LOCAL mutable std::vector<PlayerMemo> memo_;
  mutable const PlayerState* memo_players_ = nullptr;
  CF_SHARD_LOCAL mutable std::vector<obs::ObsCapture> captures_;
  mutable std::unique_ptr<util::ShardPool> pool_;
};

}  // namespace cloudfog::core
