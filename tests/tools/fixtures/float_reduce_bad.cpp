// Lint fixture: order-sensitive floating accumulation — over an unordered
// container, and into shared state from a parallel region.
// Exercised by tests/tools/lint_test.py; never compiled.
#define CF_PARALLEL_REGION
#define CF_SHARD_LOCAL

#include <unordered_map>
#include <vector>

namespace fixture {

struct Stats {
  std::unordered_map<int, double> samples_;
  double mean_ = 0.0;
  CF_SHARD_LOCAL std::vector<double> partial_;

  double order_sensitive_sum() {
    double total = 0.0;
    for (const auto& [key, value] : samples_) {
      total += value;  // BAD: bucket order is seed-defined
      (void)key;
    }
    return total;
  }

  void parallel_reduce(int shards) {
    auto body = CF_PARALLEL_REGION [&](int shard) {
      mean_ += static_cast<double>(shard);  // BAD: shared float accumulator
    };
    (void)body;
    (void)shards;
  }
};

}  // namespace fixture
