// Implicit-friendship detection.
//
// §3.4: "CloudFog keeps record of each user's playing activities …; when
// the number of times that two players play together within the recent
// week CP_ij is larger than a threshold υ, we regard it as an implicit
// friendship." The tracker keeps a rolling one-week window of co-play
// counts and can merge the implied edges into an explicit friendship
// graph before server reassignment runs.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "social/social_graph.hpp"

namespace cloudfog::social {

class FriendshipTracker {
 public:
  /// `coplay_threshold` is υ; `window_days` is the recency window.
  explicit FriendshipTracker(std::size_t player_count, int coplay_threshold = 3,
                             int window_days = 7);

  std::size_t player_count() const { return player_count_; }
  int coplay_threshold() const { return coplay_threshold_; }

  /// Records that `a` and `b` played together on day `day` (1-based).
  void record_coplay(PlayerId a, PlayerId b, int day);

  /// Drops records older than the window relative to `current_day`.
  void expire(int current_day);

  /// Co-play count for a pair within the current window.
  int coplay_count(PlayerId a, PlayerId b) const;

  /// True if the pair qualifies as implicit friends (CP_ij > υ).
  bool implicit_friends(PlayerId a, PlayerId b) const;

  /// All pairs currently qualifying as implicit friends.
  std::vector<std::pair<PlayerId, PlayerId>> implicit_friend_pairs() const;

  /// Returns `base` with implicit edges merged in — the graph G the
  /// server-assignment strategy partitions.
  SocialGraph merged_with(const SocialGraph& base) const;

 private:
  /// Packs an unordered pair into one key (smaller id in the high bits).
  static std::uint64_t pair_key(PlayerId a, PlayerId b);

  std::size_t player_count_;
  int coplay_threshold_;
  int window_days_;
  // pair -> per-day counts within the window (day -> count).
  std::unordered_map<std::uint64_t, std::unordered_map<int, int>> counts_;
};

}  // namespace cloudfog::social
