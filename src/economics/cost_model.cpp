#include "economics/cost_model.hpp"

#include "util/require.hpp"

namespace cloudfog::economics {

CostModel::CostModel(CostModelConfig cfg) : cfg_(cfg) {
  CLOUDFOG_REQUIRE(cfg.supernode_power_kw > 0.0, "power draw must be positive");
  CLOUDFOG_REQUIRE(cfg.electricity_usd_per_kwh >= 0.0, "negative electricity price");
  CLOUDFOG_REQUIRE(cfg.reward_usd_per_gb >= 0.0, "negative reward rate");
  CLOUDFOG_REQUIRE(cfg.contributed_gb_per_hour >= 0.0, "negative contribution rate");
  CLOUDFOG_REQUIRE(cfg.ec2_gpu_instance_usd_per_hour >= 0.0, "negative rent");
}

double CostModel::running_cost_usd(double hours) const {
  CLOUDFOG_REQUIRE(hours >= 0.0, "negative hours");
  return cfg_.supernode_power_kw * cfg_.electricity_usd_per_kwh * hours;
}

double CostModel::reward_usd(double hours) const {
  CLOUDFOG_REQUIRE(hours >= 0.0, "negative hours");
  return cfg_.reward_usd_per_gb * cfg_.contributed_gb_per_hour * hours;
}

double CostModel::contributor_profit_usd(double hours) const {
  return reward_usd(hours) - running_cost_usd(hours);
}

double CostModel::ec2_renting_fee_usd(double hours) const {
  CLOUDFOG_REQUIRE(hours >= 0.0, "negative hours");
  return cfg_.ec2_gpu_instance_usd_per_hour * hours;
}

double CostModel::provider_saving_vs_ec2_usd(double hours) const {
  return ec2_renting_fee_usd(hours) - reward_usd(hours);
}

double CostModel::annual_fleet_reward_usd(int supernodes, double hours_per_day) const {
  CLOUDFOG_REQUIRE(supernodes >= 0, "negative fleet size");
  CLOUDFOG_REQUIRE(hours_per_day >= 0.0 && hours_per_day <= 24.0, "hours/day out of range");
  return reward_usd(hours_per_day) * 365.0 * supernodes;
}

}  // namespace cloudfog::economics
