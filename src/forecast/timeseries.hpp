// Time-series container and accuracy metrics for the player-population
// forecaster (§3.5).
#pragma once

#include <cstddef>
#include <vector>

namespace cloudfog::forecast {

/// Append-only series of observations (one per time window).
class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(std::vector<double> values);

  void push(double v) { values_.push_back(v); }
  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  /// 0-based access.
  double at(std::size_t t) const;

  /// Value `lag` windows before the end; lag = 0 is the latest value.
  double back(std::size_t lag = 0) const;

  /// True once `lag` can be served by back().
  bool has_lag(std::size_t lag) const { return values_.size() > lag; }

  const std::vector<double>& values() const { return values_; }

  /// First difference (length size()-1).
  std::vector<double> difference() const;

  /// Seasonal difference with the given period (length size()-period).
  std::vector<double> seasonal_difference(std::size_t period) const;

 private:
  std::vector<double> values_;
};

/// Root-mean-square error of predictions against actuals.
double rmse(const std::vector<double>& actual, const std::vector<double>& predicted);

/// Mean absolute percentage error (actuals of 0 are skipped).
double mape(const std::vector<double>& actual, const std::vector<double>& predicted);

}  // namespace cloudfog::forecast
