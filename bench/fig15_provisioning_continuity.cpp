// Reproduces Fig. 15: average playback continuity vs peak user arrival
// rate, fixed pool vs dynamic provisioning.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cloudfog;
  const auto scale =
      bench::scale_from_args(argc, argv, core::ExperimentScale::provisioning());
  bench::print(core::provisioning_sweep(core::TestbedProfile::kPeerSim,
                                        {10, 20, 30, 40, 50, 60}, scale)
                   .continuity);
  bench::print(core::provisioning_sweep(core::TestbedProfile::kPlanetLab,
                                        {2, 3, 4, 5, 6, 7}, scale)
                   .continuity);
  return 0;
}
