// Lint fixture: deterministic accumulation idioms — ordered iteration for
// float sums, integer counts over unordered state (with a justified
// suppression for the traversal itself), and per-shard partials reduced by
// the caller in fixed shard order. Must stay fully lint-clean.
#define CF_PARALLEL_REGION
#define CF_SHARD_LOCAL

#include <unordered_map>
#include <vector>

namespace fixture {

struct Stats {
  std::unordered_map<int, double> samples_;
  CF_SHARD_LOCAL std::vector<double> partial_;

  double ordered_sum(const std::vector<double>& values) {
    double total = 0.0;
    for (double v : values) {
      total += v;  // vector order is deterministic
    }
    return total;
  }

  int live_count() {
    int n = 0;
    // NOLINTNEXTLINE(cloudfog-unordered-iter): integer count, order-insensitive
    for (const auto& [key, value] : samples_) {
      n += key > 0 ? 1 : 0;
      (void)value;
    }
    return n;
  }

  void parallel_reduce(int shards) {
    auto body = CF_PARALLEL_REGION [&](int shard) {
      double local = 0.0;
      local += static_cast<double>(shard);
      partial_[shard] = local;
    };
    (void)body;
    (void)shards;
  }
};

}  // namespace fixture
