#include "forecast/sarima.hpp"

#include <cmath>
#include <limits>

#include "util/require.hpp"

namespace cloudfog::forecast {

SeasonalArima::SeasonalArima(SarimaConfig cfg) : cfg_(cfg) {
  CLOUDFOG_REQUIRE(cfg.season_length >= 1, "season length must be at least 1");
  CLOUDFOG_REQUIRE(cfg.theta >= 0.0 && cfg.theta < 1.0, "θ must be in [0,1)");
  CLOUDFOG_REQUIRE(cfg.seasonal_theta >= 0.0 && cfg.seasonal_theta < 1.0,
                   "Θ must be in [0,1)");
}

double SeasonalArima::raw_forecast(std::size_t t) const {
  // Eq. 14 for the value at index t, given history through t-1.
  const std::size_t T = cfg_.season_length;
  const double n_t1 = history_.at(t - 1);
  const double n_tT = history_.at(t - T);
  const double n_tT1 = history_.at(t - T - 1);
  const double w_t1 = residuals_[t - 1];
  const double w_tT = residuals_[t - T];
  const double w_tT1 = residuals_[t - T - 1];
  return n_tT + n_t1 - n_tT1 - cfg_.theta * w_t1 - cfg_.seasonal_theta * w_tT +
         cfg_.theta * cfg_.seasonal_theta * w_tT1;
}

void SeasonalArima::observe(double value) {
  double stored = value;
  if (cfg_.log_transform) {
    CLOUDFOG_REQUIRE(value > 0.0, "log-transformed SARIMA needs positive observations");
    stored = std::log(value);
  }
  // Residuals live in the (possibly transformed) model space.
  std::optional<double> forecast;
  if (!history_.empty()) {
    forecast = seasonal_model_active() ? raw_forecast(history_.size()) : history_.back();
  }
  history_.push(stored);
  residuals_.push_back(forecast.has_value() ? stored - *forecast : 0.0);
}

std::optional<double> SeasonalArima::forecast_next() const {
  if (history_.empty()) return std::nullopt;
  const double raw =
      seasonal_model_active() ? raw_forecast(history_.size()) : history_.back();
  return cfg_.log_transform ? std::exp(raw) : raw;
}

SarimaConfig fit_sarima(const std::vector<double>& training, std::size_t season_length,
                        int grid_steps) {
  CLOUDFOG_REQUIRE(grid_steps >= 1, "need at least one grid step");
  CLOUDFOG_REQUIRE(training.size() > season_length + 1,
                   "training series must cover more than one season");
  SarimaConfig best{season_length, 0.0, 0.0};
  double best_rmse = std::numeric_limits<double>::infinity();
  for (int i = 0; i < grid_steps; ++i) {
    for (int j = 0; j < grid_steps; ++j) {
      SarimaConfig cfg{season_length, 0.9 * i / std::max(1, grid_steps - 1),
                       0.9 * j / std::max(1, grid_steps - 1)};
      SeasonalArima model(cfg);
      double sse = 0.0;
      std::size_t n = 0;
      for (double v : training) {
        const auto f = model.forecast_next();
        if (f.has_value() && model.seasonal_model_active()) {
          const double e = v - *f;
          sse += e * e;
          ++n;
        }
        model.observe(v);
      }
      if (n == 0) continue;
      const double r = std::sqrt(sse / static_cast<double>(n));
      if (r < best_rmse) {
        best_rmse = r;
        best = cfg;
      }
    }
  }
  return best;
}

}  // namespace cloudfog::forecast
