#!/usr/bin/env bash
# clang-format wrapper for CloudFog. Check-only by default on *changed*
# files (vs the merge-base with main, falling back to HEAD) — there is no
# mass-reformat mode for the whole tree on purpose: old code converges as
# it is touched.
#
#   scripts/format.sh --check            changed files must be clean
#   scripts/format.sh --check path...    specific files must be clean
#   scripts/format.sh --fix [path...]    rewrite in place
set -euo pipefail
cd "$(dirname "$0")/.."

MODE=""
PATHS=()
for arg in "$@"; do
  case "$arg" in
    --check) MODE="check" ;;
    --fix) MODE="fix" ;;
    -*) echo "unknown argument: $arg" >&2; exit 2 ;;
    *) PATHS+=("$arg") ;;
  esac
done
if [ -z "$MODE" ]; then
  echo "usage: scripts/format.sh --check|--fix [path...]" >&2
  exit 2
fi

if ! command -v clang-format >/dev/null 2>&1; then
  echo "scripts/format.sh: clang-format not found; nothing checked" >&2
  exit 0
fi

if [ "${#PATHS[@]}" -eq 0 ]; then
  # Changed C++ files relative to the merge-base with main (or HEAD for a
  # clean tree mid-branch), plus anything staged or unstaged right now.
  BASE=$(git merge-base HEAD origin/main 2>/dev/null \
      || git merge-base HEAD main 2>/dev/null \
      || echo HEAD)
  mapfile -t PATHS < <(
    { git diff --name-only "$BASE" -- '*.cpp' '*.cc' '*.hpp' '*.hh' '*.h'
      git diff --name-only --cached -- '*.cpp' '*.cc' '*.hpp' '*.hh' '*.h'
      git diff --name-only -- '*.cpp' '*.cc' '*.hpp' '*.hh' '*.h'
    } | sort -u)
fi

# Drop paths that no longer exist (deleted files show up in diffs).
EXISTING=()
for p in "${PATHS[@]}"; do
  [ -f "$p" ] && EXISTING+=("$p")
done
if [ "${#EXISTING[@]}" -eq 0 ]; then
  echo "format: no changed C++ files"
  exit 0
fi

if [ "$MODE" = "fix" ]; then
  clang-format -i --style=file "${EXISTING[@]}"
  echo "format: rewrote ${#EXISTING[@]} file(s)"
  exit 0
fi

FAILED=0
for p in "${EXISTING[@]}"; do
  if ! clang-format --style=file --dry-run -Werror "$p" >/dev/null 2>&1; then
    echo "needs formatting: $p" >&2
    FAILED=1
  fi
done
if [ "$FAILED" -ne 0 ]; then
  echo "format check failed — run scripts/format.sh --fix" >&2
  exit 1
fi
echo "format: ${#EXISTING[@]} file(s) clean"
