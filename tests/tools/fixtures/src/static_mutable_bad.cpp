// Lint fixture: non-const statics at namespace and function scope (the rule
// is scoped to src/, hence this file lives under fixtures/src/).
// Exercised by tests/tools/lint_test.py; never compiled.
#include <cstdint>
#include <string>
#include <vector>

namespace fixture {
namespace {

static int call_count = 0;                       // BAD: namespace-scope mutable
static std::vector<std::string> names;           // BAD: templated mutable
static const int kLimit = 32;                    // ok: const
static constexpr double kRatio = 0.5;            // ok: constexpr
static int helper(int x) { return x + kLimit; }  // ok: function

int bump() {
  static std::uint64_t hits = 0;  // BAD: function-local mutable
  hits += static_cast<std::uint64_t>(helper(1));
  ++call_count;
  names.emplace_back("x");
  return static_cast<int>(hits * static_cast<std::uint64_t>(kRatio));
}

}  // namespace

struct Widget {
  static int shared_config;  // ok: class member, visible in the API
  int id = 0;
};

}  // namespace fixture
