// Overlay message model.
//
// The protocol layer (src/overlay) runs the §3.2 control conversations —
// candidate lookup, RTT probing, capacity claims, liveness probes — as
// actual timestamped messages over the simulated network, rather than the
// closed-form latency sums the fluid engine uses. The two are
// cross-validated in tests/overlay.
#pragma once

#include <cstdint>
#include <string>

namespace cloudfog::overlay {

/// Overlay-wide node address (players, supernodes and datacenters share
/// one address space; see MessageNetwork::register_endpoint).
using Address = std::uint32_t;

inline constexpr Address kNoAddress = 0xffffffff;

enum class MessageKind {
  kCandidateRequest,  ///< player → cloud: "give me nearby supernodes"
  kCandidateReply,    ///< cloud → player: candidate list
  kProbe,             ///< player → supernode: RTT probe
  kProbeReply,        ///< supernode → player
  kCapacityAsk,       ///< player → supernode: sequential seat claim
  kCapacityGrant,     ///< supernode → player
  kCapacityDeny,      ///< supernode → player
  kConnect,           ///< player → supernode: start streaming
  kConnectAck,        ///< supernode → player
  kLivenessProbe,     ///< periodic keep-alive (§3.2.2)
  kLivenessReply,
  kRegister,          ///< supernode → cloud: join the fog
  kRegisterAck,
};

/// Human-readable kind name (logging, test diagnostics).
std::string to_string(MessageKind kind);

struct Message {
  Address src = kNoAddress;
  Address dst = kNoAddress;
  MessageKind kind = MessageKind::kProbe;
  /// Wire size; control messages are small, so serialization delay is
  /// usually negligible next to propagation.
  double size_bits = 2000.0;
  /// Correlates replies with requests within a protocol session.
  std::uint64_t session = 0;
  /// Small numeric payload (candidate index, deny reason, …).
  std::int64_t payload = 0;
};

}  // namespace cloudfog::overlay
