#include "net/coordinates.hpp"

#include <algorithm>
#include <cmath>

#include "util/distributions.hpp"
#include "util/require.hpp"

namespace cloudfog::net {

double distance_km(const GeoPoint& a, const GeoPoint& b) {
  const double dx = a.x_km - b.x_km;
  const double dy = a.y_km - b.y_km;
  return std::sqrt(dx * dx + dy * dy);
}

GeoPlane::GeoPlane(GeoPlaneConfig cfg, util::Rng& rng) : cfg_(cfg) {
  CLOUDFOG_REQUIRE(cfg.width_km > 0 && cfg.height_km > 0, "plane dimensions must be positive");
  CLOUDFOG_REQUIRE(cfg.metro_count > 0, "need at least one metro");
  CLOUDFOG_REQUIRE(cfg.rural_fraction >= 0.0 && cfg.rural_fraction <= 1.0,
                   "rural fraction out of [0,1]");
  metros_.reserve(cfg.metro_count);
  for (std::size_t i = 0; i < cfg.metro_count; ++i) {
    metros_.push_back(GeoPoint{rng.uniform(0.0, cfg.width_km), rng.uniform(0.0, cfg.height_km)});
  }
  metro_cdf_.reserve(cfg.metro_count);
  double acc = 0.0;
  for (std::size_t k = 1; k <= cfg.metro_count; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k), cfg.metro_zipf_skew);
    metro_cdf_.push_back(acc);
  }
  dc_sites_.reserve(64);
  for (std::size_t i = 0; i < 64; ++i) {
    dc_sites_.push_back(GeoPoint{rng.uniform(0.0, cfg.width_km), rng.uniform(0.0, cfg.height_km)});
  }
}

GeoPoint GeoPlane::sample_population_point(util::Rng& rng) const {
  if (rng.chance(cfg_.rural_fraction)) return sample_uniform_point(rng);
  const double u = rng.next_double() * metro_cdf_.back();
  const auto it = std::lower_bound(metro_cdf_.begin(), metro_cdf_.end(), u);
  const auto metro = static_cast<std::size_t>(it - metro_cdf_.begin());
  const GeoPoint& c = metros_[metro];
  GeoPoint p{c.x_km + cfg_.metro_sigma_km * util::sample_standard_normal(rng),
             c.y_km + cfg_.metro_sigma_km * util::sample_standard_normal(rng)};
  p.x_km = std::clamp(p.x_km, 0.0, cfg_.width_km);
  p.y_km = std::clamp(p.y_km, 0.0, cfg_.height_km);
  return p;
}

GeoPoint GeoPlane::sample_uniform_point(util::Rng& rng) const {
  return GeoPoint{rng.uniform(0.0, cfg_.width_km), rng.uniform(0.0, cfg_.height_km)};
}

std::vector<GeoPoint> GeoPlane::datacenter_sites(std::size_t n) const {
  CLOUDFOG_REQUIRE(n <= dc_sites_.size(), "more datacenters than prepared sites");
  return {dc_sites_.begin(), dc_sites_.begin() + static_cast<std::ptrdiff_t>(n)};
}

std::size_t GeoPlane::nearest_metro(const GeoPoint& p) const {
  std::size_t best = 0;
  double best_d = distance_km(p, metros_[0]);
  for (std::size_t i = 1; i < metros_.size(); ++i) {
    const double d = distance_km(p, metros_[i]);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

}  // namespace cloudfog::net
