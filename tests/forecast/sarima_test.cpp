#include "forecast/sarima.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "game/workload.hpp"
#include "util/require.hpp"

namespace cloudfog::forecast {
namespace {

TEST(Sarima, NoHistoryNoForecast) {
  const SeasonalArima model(SarimaConfig{4, 0.0, 0.0});
  EXPECT_FALSE(model.forecast_next().has_value());
}

TEST(Sarima, PersistenceDuringWarmup) {
  SeasonalArima model(SarimaConfig{4, 0.3, 0.3});
  model.observe(10.0);
  EXPECT_FALSE(model.seasonal_model_active());
  EXPECT_DOUBLE_EQ(model.forecast_next().value(), 10.0);
  model.observe(20.0);
  EXPECT_DOUBLE_EQ(model.forecast_next().value(), 20.0);
}

TEST(Sarima, SeasonalModelActivatesAfterFullSeasonPlusOne) {
  SeasonalArima model(SarimaConfig{4, 0.0, 0.0});
  for (int i = 0; i < 4; ++i) model.observe(static_cast<double>(i));
  EXPECT_FALSE(model.seasonal_model_active());
  model.observe(4.0);
  EXPECT_TRUE(model.seasonal_model_active());
}

TEST(Sarima, PerfectlyPeriodicSeriesForecastExactlyWithZeroMa) {
  // With θ = Θ = 0, Eq. 14 reduces to N̂_t = N_{t−T} + N_{t−1} − N_{t−T−1},
  // which is exact for any series of the form seasonal + linear trend.
  const std::size_t T = 6;
  SeasonalArima model(SarimaConfig{T, 0.0, 0.0});
  auto value = [&](int t) {
    return 100.0 + 3.0 * t + 20.0 * std::sin(2.0 * std::numbers::pi * t / 6.0);
  };
  for (int t = 0; t < 30; ++t) {
    const auto forecast = model.forecast_next();
    if (model.seasonal_model_active()) {
      ASSERT_TRUE(forecast.has_value());
      EXPECT_NEAR(*forecast, value(t), 1e-9);
    }
    model.observe(value(t));
  }
}

TEST(Sarima, Eq14RecursionMatchesManualComputation) {
  const std::size_t T = 3;
  const double theta = 0.4;
  const double seasonal_theta = 0.2;
  SeasonalArima model(SarimaConfig{T, theta, seasonal_theta});
  const std::vector<double> data{10, 12, 9, 11, 13, 10, 12, 14};

  // Mirror the recursion by hand.
  std::vector<double> w;
  std::vector<double> n;
  for (double v : data) {
    std::optional<double> f;
    if (n.size() >= T + 1) {
      const std::size_t t = n.size();
      f = n[t - T] + n[t - 1] - n[t - T - 1] - theta * w[t - 1] -
          seasonal_theta * w[t - T] + theta * seasonal_theta * w[t - T - 1];
    } else if (!n.empty()) {
      f = n.back();
    }
    const auto model_f = model.forecast_next();
    if (f.has_value()) {
      ASSERT_TRUE(model_f.has_value());
      EXPECT_NEAR(*model_f, *f, 1e-12);
    }
    model.observe(v);
    n.push_back(v);
    w.push_back(f.has_value() ? v - *f : 0.0);
  }
}

TEST(Sarima, TracksTheDiurnalWorkloadWell) {
  // The §3.5 use case: forecast the player population one 4-hour window
  // ahead. With weekly seasonality of 42 windows, SARIMA should land
  // within a few percent once the season is learnable.
  game::WorkloadConfig wl_cfg;
  game::WorkloadGenerator workload(wl_cfg, util::Rng(3));
  const auto series = workload.series(21);  // 3 weeks of hourly values

  // Aggregate into 4-hour windows.
  std::vector<double> windows;
  for (std::size_t i = 0; i + 4 <= series.size(); i += 4) {
    windows.push_back((series[i] + series[i + 1] + series[i + 2] + series[i + 3]) / 4.0);
  }

  SeasonalArima model(SarimaConfig{42, 0.3, 0.3});
  double err = 0.0;
  int counted = 0;
  for (double v : windows) {
    const auto f = model.forecast_next();
    if (f.has_value() && model.seasonal_model_active()) {
      err += std::abs(*f - v) / v;
      ++counted;
    }
    model.observe(v);
  }
  ASSERT_GT(counted, 40);
  EXPECT_LT(err / counted, 0.15);  // mean absolute percentage error
}

TEST(Sarima, FitReturnsValidConfigAndBeatsWorstGrid) {
  game::WorkloadGenerator workload(game::WorkloadConfig{}, util::Rng(4));
  const auto series = workload.series(14);
  const SarimaConfig best = fit_sarima(series, 24, 4);
  EXPECT_EQ(best.season_length, 24u);
  EXPECT_GE(best.theta, 0.0);
  EXPECT_LT(best.theta, 1.0);
}

TEST(Sarima, FitValidation) {
  EXPECT_THROW(fit_sarima({1.0, 2.0}, 24), cloudfog::ConfigError);
}

TEST(Sarima, ConfigValidation) {
  EXPECT_THROW(SeasonalArima(SarimaConfig{0, 0.3, 0.3}), cloudfog::ConfigError);
  EXPECT_THROW(SeasonalArima(SarimaConfig{4, 1.0, 0.3}), cloudfog::ConfigError);
  EXPECT_THROW(SeasonalArima(SarimaConfig{4, 0.3, -0.1}), cloudfog::ConfigError);
}

}  // namespace
}  // namespace cloudfog::forecast
