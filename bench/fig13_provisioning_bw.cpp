// Reproduces Fig. 13: cloud bandwidth consumption vs peak user arrival
// rate, with a fixed supernode pool (CloudFog/B) vs dynamic SARIMA-driven
// provisioning (CloudFog-provision).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cloudfog;
  const auto scale =
      bench::scale_from_args(argc, argv, core::ExperimentScale::provisioning());
  bench::print(core::provisioning_sweep(core::TestbedProfile::kPeerSim,
                                        {10, 20, 30, 40, 50, 60}, scale)
                   .bandwidth);
  bench::print(core::provisioning_sweep(core::TestbedProfile::kPlanetLab,
                                        {2, 3, 4, 5, 6, 7}, scale)
                   .bandwidth);
  return 0;
}
