file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_incentives.dir/ext_incentives.cpp.o"
  "CMakeFiles/bench_ext_incentives.dir/ext_incentives.cpp.o.d"
  "bench_ext_incentives"
  "bench_ext_incentives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_incentives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
