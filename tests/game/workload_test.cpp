#include "game/workload.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/require.hpp"

namespace cloudfog::game {
namespace {

WorkloadGenerator make_generator(std::uint64_t seed = 1) {
  return WorkloadGenerator(WorkloadConfig{}, util::Rng(seed));
}

TEST(Workload, PeakExceedsOffPeak) {
  auto gen = make_generator();
  const double peak = gen.expected_players(1, 22);
  const double trough = gen.expected_players(1, 10);
  EXPECT_GT(peak, trough * 1.5);
}

TEST(Workload, PeakCentredInPeakWindow) {
  auto gen = make_generator();
  double best = 0.0;
  int best_sub = 0;
  for (int sub = 1; sub <= 24; ++sub) {
    const double v = gen.expected_players(1, sub);
    if (v > best) {
      best = v;
      best_sub = sub;
    }
  }
  EXPECT_GE(best_sub, 20);
  EXPECT_LE(best_sub, 24);
}

TEST(Workload, WeekendBoostApplies) {
  auto gen = make_generator();
  // Day 6 is a Saturday (day 1 = Monday).
  EXPECT_NEAR(gen.expected_players(6, 22) / gen.expected_players(1, 22),
              WorkloadConfig{}.weekend_boost, 1e-9);
}

TEST(Workload, WeeklySeasonalityExact) {
  auto gen = make_generator();
  // The noise-free expectation repeats exactly week over week.
  EXPECT_DOUBLE_EQ(gen.expected_players(3, 15), gen.expected_players(10, 15));
}

TEST(Workload, NoisyRealizationWithinBound) {
  auto gen = make_generator();
  for (int day = 1; day <= 14; ++day) {
    for (int sub = 1; sub <= 24; ++sub) {
      const double expected = gen.expected_players(day, sub);
      const double actual = gen.players(day, sub);
      EXPECT_LE(std::abs(actual - expected) / expected,
                WorkloadConfig{}.weekly_noise + 1e-12);
    }
  }
}

TEST(Workload, RepeatedQueriesAgree) {
  auto gen = make_generator();
  const double first = gen.players(2, 21);
  const double second = gen.players(2, 21);
  EXPECT_DOUBLE_EQ(first, second);
}

TEST(Workload, WeekToWeekVariationUnderTenPercent) {
  // §3.5: "week-to-week load variations of players are less than 10 %".
  auto gen = make_generator();
  for (int sub = 1; sub <= 24; ++sub) {
    const double w1 = gen.players(1, sub);
    const double w2 = gen.players(8, sub);
    EXPECT_LT(std::abs(w2 - w1) / w1, 0.2);  // two ±8 % draws
  }
}

TEST(Workload, SeriesHasOneValuePerSubcycle) {
  auto gen = make_generator();
  const auto series = gen.series(3);
  EXPECT_EQ(series.size(), 72u);
  for (double v : series) EXPECT_GT(v, 0.0);
}

TEST(Workload, DeterministicAcrossInstances) {
  auto g1 = make_generator(7);
  auto g2 = make_generator(7);
  EXPECT_EQ(g1.series(5), g2.series(5));
}

TEST(Workload, RejectsBadConfig) {
  WorkloadConfig cfg;
  cfg.peak_players = cfg.base_players - 1;
  EXPECT_THROW(WorkloadGenerator(cfg, util::Rng(1)), cloudfog::ConfigError);
  cfg = WorkloadConfig{};
  cfg.weekly_noise = 1.0;
  EXPECT_THROW(WorkloadGenerator(cfg, util::Rng(1)), cloudfog::ConfigError);
}

TEST(Workload, QueryValidation) {
  auto gen = make_generator();
  EXPECT_THROW(gen.expected_players(0, 1), cloudfog::ConfigError);
  EXPECT_THROW(gen.expected_players(1, 25), cloudfog::ConfigError);
}

}  // namespace
}  // namespace cloudfog::game
