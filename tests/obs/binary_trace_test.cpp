// Binary trace format (DESIGN.md §11): the binary encoding is a pure
// transport — decoding must reproduce every event bit-for-bit, so the
// JSONL rendered from a decoded stream is byte-identical to the JSONL
// rendered from the original events. "Close" is a bug.
#include "obs/binary_trace.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace cloudfog::obs {
namespace {

std::string to_jsonl(const std::vector<TraceEvent>& events) {
  std::ostringstream os;
  for (const auto& e : events) TraceBuffer::write_jsonl(os, e);
  return os.str();
}

std::string encode(const std::vector<TraceEvent>& events) {
  std::ostringstream os(std::ios::binary);
  BinaryTraceSink sink(os);
  for (const auto& e : events) sink.write(e);
  sink.flush();
  return os.str();
}

std::vector<TraceEvent> decode(const std::string& bytes, std::string* error = nullptr) {
  std::istringstream is(bytes, std::ios::binary);
  BinaryTraceReader reader(is);
  std::vector<TraceEvent> out;
  TraceEvent e;
  while (reader.next(&e)) out.push_back(e);
  if (error != nullptr) *error = reader.error();
  EXPECT_TRUE(error != nullptr || reader.ok()) << reader.error();
  return out;
}

TEST(BinaryTrace, RoundTripsEveryEventKindByteIdentically) {
  std::vector<TraceEvent> events;
  for (std::size_t k = 0; k < kEventKindCount; ++k) {
    TraceEvent e;
    e.t = 0.125 * static_cast<double>(k);
    e.kind = static_cast<EventKind>(k);
    e.subject = static_cast<std::int64_t>(k);
    e.object = static_cast<std::int64_t>(k) - 2;
    e.value = 1.0 / static_cast<double>(k + 1);
    e.note = intern_note(std::string(event_kind_name(e.kind)) + "_note");
    events.push_back(e);
  }
  const auto decoded = decode(encode(events));
  ASSERT_EQ(decoded.size(), events.size());
  EXPECT_EQ(to_jsonl(decoded), to_jsonl(events));
}

TEST(BinaryTrace, RoundTripProperty) {
  // Seeded fuzz over kinds, payloads, interned + novel notes, integer
  // note arguments, and awkward doubles (non-finite values included: the
  // binary format must carry the exact bits even where JSONL writes null).
  util::Rng rng(20260807);
  std::vector<TraceEvent> events;
  const NoteId shared[] = {NoteId{}, intern_note("granted"), intern_note("denied"),
                           intern_note("wanted="), intern_note("agg")};
  const double awkward[] = {0.0, -0.0, 1e-300, -1e300, 0.1,
                            std::numeric_limits<double>::infinity(),
                            std::numeric_limits<double>::quiet_NaN(),
                            std::numeric_limits<double>::denorm_min()};
  for (int i = 0; i < 5000; ++i) {
    TraceEvent e;
    e.t = rng.uniform(0.0, 86400.0);
    e.kind = static_cast<EventKind>(rng.uniform_int(0, static_cast<std::int64_t>(kEventKindCount) - 1));
    e.subject = rng.uniform_int(-1, 1000000);
    e.object = rng.uniform_int(-1, 1000000);
    e.value = rng.uniform_int(0, 7) == 0
                  ? awkward[rng.uniform_int(0, static_cast<std::int64_t>(std::size(awkward)) - 1)]
                  : rng.uniform(-1e6, 1e6);
    const std::int64_t pick = rng.uniform_int(0, 9);
    if (pick < 5) {
      e.note = shared[rng.uniform_int(0, static_cast<std::int64_t>(std::size(shared)) - 1)];
    } else if (pick < 7) {
      // Novel note text, first seen mid-stream.
      e.note = intern_note("novel_" + std::to_string(i));
    }
    if (!e.note.empty() && rng.uniform_int(0, 1) == 0) {
      e.note = Note{e.note.id, rng.uniform_int(-1000, 100000)};
    }
    events.push_back(e);
  }
  const std::string bytes = encode(events);
  const auto decoded = decode(bytes);
  ASSERT_EQ(decoded.size(), events.size());
  EXPECT_EQ(to_jsonl(decoded), to_jsonl(events));
  // The exact payload bits survive, not just their printed form.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(std::signbit(decoded[i].value), std::signbit(events[i].value));
    EXPECT_EQ(std::isnan(decoded[i].value), std::isnan(events[i].value));
  }
}

TEST(BinaryTrace, StringTableEntriesAreWrittenOnce) {
  std::vector<TraceEvent> events;
  const NoteId note = intern_note("repeated_note_text");
  for (int i = 0; i < 100; ++i) {
    TraceEvent e;
    e.kind = EventKind::kRating;
    e.note = note;
    events.push_back(e);
  }
  const std::string bytes = encode(events);
  // header + one string frame (tag + id + len + text) + 100 event frames.
  const std::size_t expected = kBinaryTraceHeaderBytes +
                               (1 + 2 + 2 + std::string("repeated_note_text").size()) +
                               100 * (1 + kBinaryTraceRecordBytes);
  EXPECT_EQ(bytes.size(), expected);
}

TEST(BinaryTrace, FlushMidStreamPreservesTheByteStream) {
  std::vector<TraceEvent> events;
  for (int i = 0; i < 10; ++i) {
    TraceEvent e;
    e.t = i;
    e.kind = EventKind::kPlayerJoin;
    e.note = intern_note("flush_note_" + std::to_string(i % 3));
    events.push_back(e);
  }
  std::ostringstream os(std::ios::binary);
  {
    BinaryTraceSink sink(os);
    for (std::size_t i = 0; i < events.size(); ++i) {
      sink.write(events[i]);
      if (i % 3 == 0) sink.flush();  // arbitrary flush boundaries
    }
  }  // destructor flushes the rest
  EXPECT_EQ(os.str(), encode(events));
}

TEST(BinaryTrace, RingWrapAndFlushThroughTraceBufferLosesNothing) {
  TraceBuffer buf(16);  // much smaller than the event count: forces wraps
  std::ostringstream os(std::ios::binary);
  BinaryTraceSink sink(os);
  buf.set_event_sink(&sink);
  std::vector<TraceEvent> events;
  for (int i = 0; i < 1000; ++i) {
    TraceEvent e;
    e.t = 0.25 * i;
    e.kind = static_cast<EventKind>(static_cast<std::size_t>(i) % kEventKindCount);
    e.subject = i;
    events.push_back(e);
    buf.push(e);
  }
  buf.flush();
  buf.set_event_sink(nullptr);
  EXPECT_EQ(buf.dropped(), 0u);
  const auto decoded = decode(os.str());
  ASSERT_EQ(decoded.size(), events.size());
  EXPECT_EQ(to_jsonl(decoded), to_jsonl(events));
}

TEST(BinaryTraceReader, RejectsBadMagicAndTruncation) {
  TraceEvent e;
  e.kind = EventKind::kRating;
  const std::string bytes = encode({e});

  std::string corrupt = bytes;
  corrupt[0] = 'X';
  std::string error;
  decode(corrupt, &error);
  EXPECT_FALSE(error.empty());

  // Cutting into the middle of the event record is truncation, not EOF.
  const std::string truncated = bytes.substr(0, bytes.size() - 10);
  decode(truncated, &error);
  EXPECT_FALSE(error.empty());

  // Clean EOF right after the header is an empty trace, not an error.
  const auto empty = decode(bytes.substr(0, kBinaryTraceHeaderBytes), &error);
  EXPECT_TRUE(empty.empty());
  EXPECT_TRUE(error.empty()) << error;
}

TEST(BinaryTraceReader, RejectsUnknownEventKind) {
  TraceEvent e;
  const std::string bytes = encode({e});
  std::string corrupt = bytes;
  // Kind byte lives at offset 40 of the record, after the header + tag.
  corrupt[kBinaryTraceHeaderBytes + 1 + 40] = static_cast<char>(0x7f);
  std::string error;
  decode(corrupt, &error);
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace cloudfog::obs
