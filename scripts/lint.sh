#!/usr/bin/env bash
# CloudFog determinism & correctness lint over src/ and bench/.
#
#   scripts/lint.sh                 lint the default tree (src/ + bench/)
#   scripts/lint.sh path...         lint specific files or directories
#   scripts/lint.sh --list-rules    describe the rules
#   scripts/lint.sh --jobs 0        scan files in parallel (identical output)
#   scripts/lint.sh --stats         per-rule finding counts (zeroes included)
#
# Exit: 0 clean, 1 findings, 2 usage error. See tools/lint/cloudfog_lint.py
# for rule details and the NOLINT(cloudfog-<rule>): <justification> escape
# hatch.
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v python3 >/dev/null 2>&1; then
  echo "scripts/lint.sh: python3 is required" >&2
  exit 2
fi

exec python3 tools/lint/cloudfog_lint.py "$@"
