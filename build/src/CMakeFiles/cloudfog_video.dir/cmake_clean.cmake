file(REMOVE_RECURSE
  "CMakeFiles/cloudfog_video.dir/video/continuity.cpp.o"
  "CMakeFiles/cloudfog_video.dir/video/continuity.cpp.o.d"
  "CMakeFiles/cloudfog_video.dir/video/packet_stream.cpp.o"
  "CMakeFiles/cloudfog_video.dir/video/packet_stream.cpp.o.d"
  "CMakeFiles/cloudfog_video.dir/video/playback_buffer.cpp.o"
  "CMakeFiles/cloudfog_video.dir/video/playback_buffer.cpp.o.d"
  "CMakeFiles/cloudfog_video.dir/video/qoe.cpp.o"
  "CMakeFiles/cloudfog_video.dir/video/qoe.cpp.o.d"
  "CMakeFiles/cloudfog_video.dir/video/rate_adapter.cpp.o"
  "CMakeFiles/cloudfog_video.dir/video/rate_adapter.cpp.o.d"
  "CMakeFiles/cloudfog_video.dir/video/segment.cpp.o"
  "CMakeFiles/cloudfog_video.dir/video/segment.cpp.o.d"
  "CMakeFiles/cloudfog_video.dir/video/stream_session.cpp.o"
  "CMakeFiles/cloudfog_video.dir/video/stream_session.cpp.o.d"
  "libcloudfog_video.a"
  "libcloudfog_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudfog_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
