// Append-only columnar store of per-run metrics (DESIGN.md §11).
//
// BENCH_*.json is a point sample; the run-store is the trajectory. Every
// bench binary can append its per-cycle metrics and report summary into a
// small column store on disk (one file per metric column, in the spirit of
// leanstore's profiling tables), keyed by (run id, git sha, config hash).
// scripts/bench_trend.py and tools/runstore_query read it back to compare
// a fresh run against history.
//
// On-disk layout under the store directory:
//
//   manifest.tsv            one row per run, tab-separated:
//                             row-index \t run_id \t git_sha \t config_hash
//                           (fields sanitized: tabs/newlines become '_')
//   columns/<name>.col      binary column file:
//                             header (8 bytes): magic "CFRC", u16 version,
//                             u16 reserved
//                             then 16-byte little-endian records:
//                             u64 row-index, f64 value
//
// Appending the same column several times for one row forms an in-run
// series (e.g. per-cycle values) — records keep append order. Everything
// is plain append, so concurrent histories merge by concatenation and a
// partial write can lose at most the tail record.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cloudfog::obs {

struct RunKey {
  std::string run_id;
  std::string git_sha;
  std::string config_hash;
};

class RunStore {
 public:
  inline static constexpr std::uint16_t kColumnVersion = 1;

  /// Opens (creating if needed) the store rooted at `dir`.
  explicit RunStore(std::string dir);

  const std::string& dir() const { return dir_; }

  /// Appends a manifest row for a new run and returns its row index.
  std::uint64_t begin_row(const RunKey& key);

  /// Appends one value to `column` for `row`. Column names are sanitized
  /// to [A-Za-z0-9._-] for the file name.
  void append(std::uint64_t row, std::string_view column, double value);

  // ---- query surface (used by tools/runstore_query and tests) ----

  struct Row {
    std::uint64_t row = 0;
    std::string run_id;
    std::string git_sha;
    std::string config_hash;
  };

  /// Manifest rows in append order.
  std::vector<Row> rows() const;

  /// Sorted names of every column present in the store.
  std::vector<std::string> columns() const;

  /// All (row, value) records of a column, in append order. Returns an
  /// empty vector for unknown columns.
  std::vector<std::pair<std::uint64_t, double>> column(std::string_view name) const;

  /// File-name-safe form of a column name.
  static std::string sanitize(std::string_view name);

 private:
  std::string column_path(std::string_view name) const;

  std::string dir_;
};

}  // namespace cloudfog::obs
