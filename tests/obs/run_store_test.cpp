// Columnar run-store (DESIGN.md §11): append-only manifest + per-metric
// column files, reopened and queried across store instances.
#include "obs/run_store.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace cloudfog::obs {
namespace {

class RunStoreTest : public ::testing::Test {
 protected:
  RunStoreTest() {
    dir_ = (std::filesystem::path(::testing::TempDir()) /
            ("runstore_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::remove_all(dir_);
  }
  ~RunStoreTest() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(RunStoreTest, AppendReopenQuery) {
  {
    RunStore store(dir_);
    const std::uint64_t row = store.begin_row({"run-a", "sha1", "cfg1"});
    EXPECT_EQ(row, 0u);
    store.append(row, "qos.mos.mean", 4.25);
    store.append(row, "qos.latency_ms", 80.0);
  }
  {
    // Reopen: row indices continue from the manifest on disk.
    RunStore store(dir_);
    const std::uint64_t row = store.begin_row({"run-b", "sha2", "cfg1"});
    EXPECT_EQ(row, 1u);
    store.append(row, "qos.mos.mean", 4.5);
  }
  RunStore store(dir_);
  const auto rows = store.rows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].run_id, "run-a");
  EXPECT_EQ(rows[0].git_sha, "sha1");
  EXPECT_EQ(rows[0].config_hash, "cfg1");
  EXPECT_EQ(rows[1].row, 1u);
  EXPECT_EQ(rows[1].run_id, "run-b");

  const auto columns = store.columns();
  ASSERT_EQ(columns.size(), 2u);
  EXPECT_EQ(columns[0], "qos.latency_ms");
  EXPECT_EQ(columns[1], "qos.mos.mean");

  const auto mos = store.column("qos.mos.mean");
  ASSERT_EQ(mos.size(), 2u);
  EXPECT_EQ(mos[0].first, 0u);
  EXPECT_DOUBLE_EQ(mos[0].second, 4.25);
  EXPECT_EQ(mos[1].first, 1u);
  EXPECT_DOUBLE_EQ(mos[1].second, 4.5);

  EXPECT_TRUE(store.column("unknown.metric").empty());
}

TEST_F(RunStoreTest, RepeatedAppendsFormAnInRunSeries) {
  RunStore store(dir_);
  const std::uint64_t row = store.begin_row({"run", "sha", "cfg"});
  for (int i = 0; i < 4; ++i) {
    store.append(row, "subcycle_ms", 1.0 + i);
  }
  const auto series = store.column("subcycle_ms");
  ASSERT_EQ(series.size(), 4u);
  for (std::size_t i = 0; i < series.size(); ++i) {
    EXPECT_EQ(series[i].first, row);
    EXPECT_DOUBLE_EQ(series[i].second, 1.0 + static_cast<double>(i));
  }
}

TEST_F(RunStoreTest, SanitizesColumnNamesAndManifestFields) {
  EXPECT_EQ(RunStore::sanitize("qos/mos mean"), "qos_mos_mean");
  EXPECT_EQ(RunStore::sanitize(""), "_");
  EXPECT_EQ(RunStore::sanitize("ok.name-1_2"), "ok.name-1_2");

  RunStore store(dir_);
  const std::uint64_t row = store.begin_row({"id\twith\ttabs", "sha\nline", "cfg"});
  store.append(row, "weird/column name", 1.0);
  const auto rows = store.rows();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].run_id, "id_with_tabs");
  EXPECT_EQ(rows[0].git_sha, "sha_line");
  ASSERT_EQ(store.columns().size(), 1u);
  EXPECT_EQ(store.columns()[0], "weird_column_name");
  EXPECT_EQ(store.column("weird/column name").size(), 1u);
}

TEST_F(RunStoreTest, TornTailRecordIsDropped) {
  RunStore store(dir_);
  const std::uint64_t row = store.begin_row({"run", "sha", "cfg"});
  store.append(row, "metric_ms", 1.0);
  store.append(row, "metric_ms", 2.0);
  const auto path = std::filesystem::path(dir_) / "columns" / "metric_ms.col";
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 5);  // tear the last record
  const auto records = store.column("metric_ms");
  ASSERT_EQ(records.size(), 1u);
  EXPECT_DOUBLE_EQ(records[0].second, 1.0);
  // Appending after a crash keeps working (the torn tail stays ignored).
  store.append(row, "metric_ms", 3.0);
  EXPECT_EQ(store.column("metric_ms").size(), 2u);
}

TEST_F(RunStoreTest, EmptyStoreQueries) {
  RunStore store(dir_);
  EXPECT_TRUE(store.rows().empty());
  EXPECT_TRUE(store.columns().empty());
  EXPECT_TRUE(store.column("anything").empty());
}

}  // namespace
}  // namespace cloudfog::obs
