// Minimal command-line flag parser for the tools and benchmarks.
//
// Supports `--flag`, `--key value` and `--key=value`, plus positional
// arguments. Unknown flags are an error by default so typos surface
// immediately; lookups are typed with defaults.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace cloudfog::util {

class CliArgs {
 public:
  /// Parses argv. Throws ConfigError on malformed input (an option with
  /// a missing value is fine — it becomes a boolean flag).
  CliArgs(int argc, const char* const* argv);

  const std::string& program() const { return program_; }

  /// Positional arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

  bool has(const std::string& key) const;

  /// Raw value; nullopt for absent keys or bare boolean flags.
  std::optional<std::string> value(const std::string& key) const;

  /// Typed lookups; throw ConfigError if present but unparsable.
  std::string get_string(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback = false) const;

  /// Keys seen on the command line (for unknown-flag validation).
  const std::vector<std::string>& keys() const { return keys_; }

  /// Throws ConfigError if any parsed key is not in `allowed`.
  void require_known(const std::vector<std::string>& allowed) const;

 private:
  std::string program_;
  std::vector<std::string> positional_;
  std::vector<std::string> keys_;
  std::vector<std::pair<std::string, std::optional<std::string>>> options_;
};

}  // namespace cloudfog::util
