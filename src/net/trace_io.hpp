// Latency-trace file I/O.
//
// The paper samples pairwise latencies "from the ping latency traces from
// the League of Legends [54] based on each latency's occurrence
// frequency". This loader reads such a trace as a histogram file — one
// `<bucket_ms> <count>` pair per line, `#` comments — into an empirical
// distribution, so a real trace can replace the synthetic mixture in
// net::PingTrace without recompiling. A reference histogram shaped like
// the published LoL data ships in data/lol_ping_histogram.txt.
#pragma once

#include <istream>
#include <string>

#include "util/distributions.hpp"

namespace cloudfog::net {

/// Parses a histogram stream. Throws ConfigError on malformed lines,
/// negative values, or an empty histogram.
util::EmpiricalDistribution load_latency_histogram(std::istream& in);

/// Opens and parses a histogram file; throws ConfigError if unreadable.
util::EmpiricalDistribution load_latency_histogram_file(const std::string& path);

/// Writes a distribution's bins back out in the same format (round-trip
/// support for tooling that rebins or filters traces).
void save_latency_histogram(std::ostream& out,
                            const std::vector<util::EmpiricalDistribution::Bin>& bins);

}  // namespace cloudfog::net
