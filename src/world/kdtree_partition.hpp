// kd-tree partitioning of the virtual world across game servers.
//
// The paper's MMOG background ([1], [13] — Bezerra et al.) balances a
// virtual world across servers by recursively splitting it at the median
// avatar coordinate, alternating axes, so every leaf region carries an
// equal share of the population regardless of hotspots. This module
// implements that partitioner plus the static uniform grid it is usually
// compared against, and the load / cross-boundary metrics that motivate
// it.
#pragma once

#include <cstddef>
#include <vector>

#include "world/virtual_world.hpp"

namespace cloudfog::world {

/// Axis-aligned rectangle [x0,x1) × [y0,y1).
struct Rect {
  double x0 = 0.0;
  double y0 = 0.0;
  double x1 = 0.0;
  double y1 = 0.0;

  bool contains(const Vec2& p) const {
    return p.x >= x0 && p.x < x1 && p.y >= y0 && p.y < y1;
  }
};

struct Region {
  Rect bounds;
  std::size_t server = 0;  ///< server hosting this region's state
  std::size_t load = 0;    ///< avatars inside at build time
};

class WorldPartition {
 public:
  WorldPartition(std::vector<Region> regions, double width, double height);

  std::size_t region_count() const { return regions_.size(); }
  const std::vector<Region>& regions() const { return regions_; }

  /// Region containing a point. Points on the outer edge clamp inward.
  std::size_t region_of(const Vec2& p) const;
  std::size_t server_of(const Vec2& p) const { return regions_[region_of(p)].server; }

  /// Per-server avatar counts for the current world state.
  std::vector<std::size_t> server_loads(const VirtualWorld& world,
                                        std::size_t server_count) const;

  /// max/mean of per-server load — 1.0 is perfect balance.
  static double imbalance(const std::vector<std::size_t>& loads);

  /// Fraction of interacting avatar pairs whose members sit on different
  /// servers — each such pair costs inter-server communication (§3.4).
  double cross_server_interaction_fraction(const VirtualWorld& world) const;

 private:
  std::vector<Region> regions_;
  double width_;
  double height_;
};

/// Builds a kd-tree partition with `region_count` leaves (must be a power
/// of two) over the world's current avatars, assigning leaves to
/// `server_count` servers round-robin (each server gets contiguousish,
/// equally loaded leaves).
WorldPartition build_kdtree_partition(const VirtualWorld& world, std::size_t region_count,
                                      std::size_t server_count);

/// The naive alternative: a fixed rows×cols grid, population-blind.
WorldPartition build_grid_partition(const VirtualWorld& world, std::size_t rows,
                                    std::size_t cols, std::size_t server_count);

}  // namespace cloudfog::world
