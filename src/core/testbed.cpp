#include "core/testbed.hpp"

#include <algorithm>
#include <numeric>

#include "util/require.hpp"

namespace cloudfog::core {

TestbedConfig TestbedConfig::peersim(std::size_t players) {
  TestbedConfig cfg;
  cfg.profile = TestbedProfile::kPeerSim;
  cfg.player_count = players;
  cfg.supernode_capable_fraction = 0.10;
  cfg.datacenter_count = 5;
  cfg.servers_per_datacenter = 50;
  // Sized so that direct cloud streaming of the full population congests
  // at the evening peak (the regime the paper's Cloud baseline runs in).
  cfg.datacenter_uplink_mbps = 800.0;
  return cfg;
}

TestbedConfig TestbedConfig::planetlab(std::size_t players) {
  TestbedConfig cfg;
  cfg.profile = TestbedProfile::kPlanetLab;
  cfg.player_count = players;
  // 30 of 750 nodes "have the capacity to be supernodes" (§4.1).
  cfg.supernode_capable_fraction = 0.04;
  cfg.datacenter_count = 2;
  cfg.servers_per_datacenter = 50;
  cfg.datacenter_uplink_mbps = 150.0;
  return cfg;
}

namespace {

net::TraceProfile trace_profile_for(TestbedProfile profile) {
  return profile == TestbedProfile::kPeerSim ? net::TraceProfile::kLeagueOfLegends
                                             : net::TraceProfile::kPlanetLab;
}

}  // namespace

Testbed::Testbed(TestbedConfig cfg, std::uint64_t seed)
    : cfg_(cfg),
      seed_(seed),
      build_rng_(util::splitmix64(seed), util::splitmix64(seed ^ 0x7e57bed5ULL)),
      plane_(cfg.geo, build_rng_),
      trace_(trace_profile_for(cfg.profile)),
      latency_(net::LatencyModelConfig{}),
      bandwidth_(cfg.bandwidth),
      catalog_(game::GameCatalog::paper_default()),
      activity_(cfg.activity),
      graph_(0) {
  CLOUDFOG_REQUIRE(cfg.player_count >= 2, "need at least two players");
  CLOUDFOG_REQUIRE(cfg.datacenter_count >= 1, "need at least one datacenter");
  CLOUDFOG_REQUIRE(cfg.datacenter_count <= 64, "more datacenters than prepared sites");
  CLOUDFOG_REQUIRE(cfg.supernode_capable_fraction >= 0.0 &&
                       cfg.supernode_capable_fraction <= 1.0,
                   "capable fraction out of [0,1]");

  util::Rng player_rng = build_rng_.fork("players");
  players_.reserve(cfg.player_count);
  for (std::size_t i = 0; i < cfg.player_count; ++i) {
    PlayerInfo info;
    info.id = i;
    info.endpoint =
        net::make_endpoint(plane_.sample_population_point(player_rng), trace_, player_rng);
    info.bandwidth = bandwidth_.sample_node_bandwidth(player_rng);
    info.duration_class = activity_.sample_duration_class(player_rng);
    info.supernode_capable = player_rng.chance(cfg.supernode_capable_fraction);
    players_.push_back(info);
  }

  // Capable players in a fixed shuffled order; fleets take a prefix.
  for (std::size_t i = 0; i < players_.size(); ++i) {
    if (players_[i].supernode_capable) supernode_capable_.push_back(i);
  }
  CLOUDFOG_REQUIRE(cfg.supernode_capable_fraction == 0.0 || !supernode_capable_.empty(),
                   "no supernode-capable players were drawn");
  util::Rng shuffle_rng = build_rng_.fork("capable-order");
  std::shuffle(supernode_capable_.begin(), supernode_capable_.end(), shuffle_rng);

  // Per-capable-player supernode characteristics, sampled once so that a
  // fleet of size k is always a prefix-stable subset.
  util::Rng sn_rng = build_rng_.fork("supernodes");
  supernode_capacity_.reserve(supernode_capable_.size());
  supernode_upload_.reserve(supernode_capable_.size());
  for (std::size_t i = 0; i < supernode_capable_.size(); ++i) {
    const int natural_capacity = bandwidth_.sample_supernode_capacity(sn_rng);
    // Supernodes are required to have a "superior network connection"
    // (§3.1.1): the uplink carries the machine's natural seat complement
    // at the top ladder bitrate (1.8 Mbps), with some headroom. A forced
    // capacity (Fig. 10/11 sweeps) overrides only the *seat count* — more
    // players on the same hardware, which is the point of those sweeps.
    supernode_capacity_.push_back(cfg.forced_supernode_capacity.value_or(natural_capacity));
    supernode_upload_.push_back(static_cast<double>(natural_capacity) * 1.8 *
                                sn_rng.uniform(1.0, 1.3));
    supernode_access_.push_back(sn_rng.uniform(1.5, 4.0));
  }

  util::Rng social_rng = build_rng_.fork("social");
  graph_ = social::generate_power_law_graph(cfg.player_count, cfg.social, social_rng);
}

std::vector<DatacenterState> Testbed::make_datacenters(std::optional<std::size_t> count) const {
  const std::size_t n = count.value_or(cfg_.datacenter_count);
  CLOUDFOG_REQUIRE(n >= 1, "need at least one datacenter");
  const auto sites = plane_.datacenter_sites(n);
  std::vector<DatacenterState> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    DatacenterState dc;
    dc.id = i;
    dc.endpoint = net::make_infrastructure_endpoint(sites[i]);
    dc.server_count = cfg_.servers_per_datacenter;
    dc.uplink_mbps = cfg_.datacenter_uplink_mbps;
    out.push_back(dc);
  }
  return out;
}

std::vector<SupernodeState> Testbed::make_supernode_fleet(std::size_t count) const {
  CLOUDFOG_REQUIRE(count <= supernode_capable_.size(),
                   "fleet larger than the supernode-capable population");
  std::vector<SupernodeState> fleet;
  fleet.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t owner = supernode_capable_[i];
    SupernodeState sn;
    sn.id = i;
    sn.owner_player = owner;
    // A supernode sits at its owner's location but on a "superior network
    // connection" (§3.1.1 requirement 3) — office/fibre-grade access, not
    // the owner's residential last mile.
    sn.endpoint = players_[owner].endpoint;
    sn.endpoint.access_latency_ms = supernode_access_[i];
    sn.upload_mbps = supernode_upload_[i];
    sn.capacity = supernode_capacity_[i];
    fleet.push_back(sn);
  }
  return fleet;
}

std::vector<CdnServerState> Testbed::make_cdn_servers(std::size_t count,
                                                      std::uint64_t salt) const {
  util::Rng rng(util::splitmix64(seed_ ^ 0xcd41234ULL ^ salt),
                util::splitmix64(seed_ ^ 0xcd45678ULL ^ salt));
  std::vector<CdnServerState> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    CdnServerState edge;
    edge.id = i;
    // §4.1: "randomly distributed servers" — placement is uniform over the
    // plane, one of the structural disadvantages vs supernodes, which sit
    // exactly where players are.
    edge.endpoint = net::make_infrastructure_endpoint(plane_.sample_uniform_point(rng));
    edge.uplink_mbps = cfg_.cdn_uplink_mbps;
    edge.capacity = cfg_.cdn_capacity_players;
    out.push_back(edge);
  }
  return out;
}

}  // namespace cloudfog::core
