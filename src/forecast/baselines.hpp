// Baseline forecasters and a common evaluation harness.
//
// §3.5 chooses seasonal ARIMA for the player-population forecast; the
// natural ablation is against the two simpler rules it must beat:
//   * persistence          — N̂_t = N_{t−1};
//   * seasonal naive       — N̂_t = N_{t−T} (same window last week).
// All three share the observe()/forecast_next() shape, and
// evaluate_forecaster() scores any of them on a series.
#pragma once

#include <optional>
#include <vector>

#include "forecast/sarima.hpp"
#include "forecast/timeseries.hpp"

namespace cloudfog::forecast {

/// N̂_t = N_{t−1}.
class PersistenceForecaster {
 public:
  void observe(double value) { last_ = value; }
  std::optional<double> forecast_next() const { return last_; }

 private:
  std::optional<double> last_;
};

/// N̂_t = N_{t−T}; persistence until one full season is observed.
class SeasonalNaiveForecaster {
 public:
  explicit SeasonalNaiveForecaster(std::size_t season_length);

  void observe(double value);
  std::optional<double> forecast_next() const;
  bool seasonal() const { return history_.size() >= season_; }

 private:
  std::size_t season_;
  std::vector<double> history_;
};

struct ForecastAccuracy {
  double mape = 0.0;
  double rmse = 0.0;
  std::size_t scored = 0;  ///< windows with a forecast available
};

/// Replays `series` through a forecaster, scoring one-step forecasts.
/// `skip` warm-up windows are excluded from the score so every model is
/// judged on the same post-warm-up stretch.
template <typename Forecaster>
ForecastAccuracy evaluate_forecaster(Forecaster& model, const std::vector<double>& series,
                                     std::size_t skip) {
  std::vector<double> actual;
  std::vector<double> predicted;
  for (std::size_t t = 0; t < series.size(); ++t) {
    const auto f = model.forecast_next();
    if (t >= skip && f.has_value()) {
      actual.push_back(series[t]);
      predicted.push_back(*f);
    }
    model.observe(series[t]);
  }
  ForecastAccuracy out;
  out.scored = actual.size();
  if (!actual.empty()) {
    out.mape = mape(actual, predicted);
    out.rmse = rmse(actual, predicted);
  }
  return out;
}

}  // namespace cloudfog::forecast
