// Trace retention determinism (DESIGN.md §11): sampling decisions are a
// pure function of the deterministic event arrival sequence — never wall
// clock or RNG — so a sampled (or aggregated) trace must be byte-identical
// across runs and across QoS thread counts, exactly like the full trace.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/system.hpp"
#include "core/testbed.hpp"
#include "obs/binary_trace.hpp"
#include "obs/obs.hpp"

namespace {

using namespace cloudfog;

struct RetentionSpec {
  obs::TraceRetention mode = obs::TraceRetention::kFull;
  std::uint64_t sample_every = 1;
};

/// Runs one day under a fresh recorder with the given retention and QoS
/// thread count; returns the JSONL trace bytes.
std::string run_traced(const core::Testbed& testbed, int threads, RetentionSpec spec) {
  auto& rec = obs::Recorder::global();
  rec.reset();
  rec.set_enabled(true);
  auto& buf = rec.trace_buffer();
  buf.set_retention(spec.mode, spec.sample_every);
  std::ostringstream trace;
  buf.set_sink(&trace);
  {
    core::SystemConfig cfg;
    cfg.architecture = core::Architecture::kCloudFog;
    cfg.supernode_count = 80;
    cfg.qos.threads = threads;
    core::System system(testbed, cfg, 97);
    const int per_day = testbed.activity().config().subcycles_per_day;
    system.begin_cycle(1);
    for (int s = 1; s <= per_day; ++s) system.run_subcycle(1, s, false, false);
    system.end_cycle(1);
  }
  buf.close_aggregation_window();
  buf.flush();
  EXPECT_EQ(buf.dropped(), 0u);
  buf.set_sink(nullptr);
  rec.set_enabled(false);
  rec.reset();
  buf.set_retention(obs::TraceRetention::kFull);
  return trace.str();
}

class TraceRetention : public ::testing::Test {
 protected:
  TraceRetention() : testbed_(core::TestbedConfig::peersim(1200), 7) {}
  core::Testbed testbed_;
};

TEST_F(TraceRetention, SampledTraceIsIdenticalAcrossThreadCounts) {
  const RetentionSpec sampled{obs::TraceRetention::kSampled, 16};
  const std::string serial = run_traced(testbed_, 1, sampled);
  const std::string parallel = run_traced(testbed_, 4, sampled);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
  // Repeat run: same seed, same bytes.
  EXPECT_EQ(serial, run_traced(testbed_, 2, sampled));
}

TEST_F(TraceRetention, SampledTraceIsASubsetKeepingStructure) {
  const std::string full = run_traced(testbed_, 1, {});
  const std::string sampled =
      run_traced(testbed_, 1, {obs::TraceRetention::kSampled, 16});
  ASSERT_LT(sampled.size(), full.size() / 4);
  // Every sampled line exists verbatim in the full trace, in order.
  std::istringstream lines(sampled);
  std::string line;
  std::size_t from = 0;
  while (std::getline(lines, line)) {
    const std::size_t at = full.find(line + "\n", from);
    ASSERT_NE(at, std::string::npos) << "sampled line missing from full trace: " << line;
    from = at + 1;
  }
  // Structural events all survive sampling.
  for (const char* needle : {"\"kind\":\"run_start\"", "\"kind\":\"subcycle\""}) {
    std::size_t count_full = 0, count_sampled = 0;
    for (std::size_t p = full.find(needle); p != std::string::npos;
         p = full.find(needle, p + 1)) ++count_full;
    for (std::size_t p = sampled.find(needle); p != std::string::npos;
         p = sampled.find(needle, p + 1)) ++count_sampled;
    EXPECT_EQ(count_full, count_sampled) << needle;
  }
}

TEST_F(TraceRetention, AggregatedTraceIsIdenticalAcrossThreadCounts) {
  const RetentionSpec agg{obs::TraceRetention::kAggregated, 1};
  const std::string serial = run_traced(testbed_, 1, agg);
  const std::string parallel = run_traced(testbed_, 4, agg);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
  EXPECT_NE(serial.find("\"note\":\"agg\""), std::string::npos);
}

}  // namespace
