#include "net/bandwidth_model.hpp"

#include <cmath>

#include "util/require.hpp"

namespace cloudfog::net {

namespace {

// Residential broadband download tiers (Mbps, weight = population share),
// matching the first-order statistics of the VoD measurement studies the
// paper cites: a DSL floor, a cable/fibre bulk, and a fast minority.
util::EmpiricalDistribution make_download_tiers() {
  using Bin = util::EmpiricalDistribution::Bin;
  return util::EmpiricalDistribution({
      Bin{1.5, 0.08},
      Bin{3.0, 0.17},
      Bin{6.0, 0.30},
      Bin{10.0, 0.25},
      Bin{20.0, 0.14},
      Bin{50.0, 0.06},
  });
}

}  // namespace

BandwidthModel::BandwidthModel(BandwidthModelConfig cfg)
    : cfg_(cfg),
      download_tiers_(make_download_tiers()),
      capacity_dist_(cfg.supernode_capacity_min, cfg.supernode_capacity_max,
                     cfg.supernode_capacity_alpha) {
  CLOUDFOG_REQUIRE(cfg.upload_divisor >= 1.0, "upload divisor below 1");
}

NodeBandwidth BandwidthModel::sample_node_bandwidth(util::Rng& rng) const {
  const double down = download_tiers_.sample(rng);
  return NodeBandwidth{down, down / cfg_.upload_divisor};
}

int BandwidthModel::sample_supernode_capacity(util::Rng& rng) const {
  return static_cast<int>(std::floor(capacity_dist_.sample(rng)));
}

double BandwidthModel::mean_download_mbps() const { return download_tiers_.mean(); }

}  // namespace cloudfog::net
