// Incentive and bandwidth-economics model (paper §3.1.1–§3.1.2, Eqs. 1–6).
//
// Supernode side: a contributor earns c_s per unit of contributed upload
// bandwidth and pays its own running costs, so its profit is
//   P_s(j) = c_s · c_j · u_j − cost_j                         (Eq. 1)
//
// Provider side: with N players streaming at rate R, m supernodes (update
// feed Λ each) covering n players, the cloud's bandwidth reduction is
//   B_r = N·R − Λ·m − (N−n)·R = n·R − Λ·m                     (Eq. 2)
// and the provider's saving, rewarding total supernode contribution B_s,
//   C_g = c_c·(n·R − Λ·m) − c_s·B_s                           (Eq. 3)
// subject to Σ c_j·u_j ≥ n·R and 0 ≤ u_j ≤ 1                  (Eqs. 4–5)
// The marginal value of deploying one more supernode covering ν new
// players is
//   G_s(j) = c_c·(ν·R − Λ) − c_s·c_j·u_j                      (Eq. 6)
#pragma once

#include <cstddef>
#include <vector>

namespace cloudfog::economics {

/// One supernode's contribution terms.
struct SupernodeContribution {
  double upload_capacity = 0.0;  ///< c_j, bandwidth units (e.g. Mbps)
  double utilization = 0.0;      ///< u_j ∈ [0,1]
  double running_cost = 0.0;     ///< cost_j, in the same unit as rewards
};

/// Eq. 1 — contributor profit.
double supernode_profit(const SupernodeContribution& sn, double reward_per_unit);

/// Σ c_j·u_j — total supernode bandwidth contribution B_s.
double total_contribution(const std::vector<SupernodeContribution>& sns);

struct ProviderEconomics {
  double streaming_rate = 1.2;      ///< R, Mbps per player stream
  double update_rate = 0.2;         ///< Λ, Mbps of cloud→supernode updates
  double revenue_per_unit = 1.0;    ///< c_c, value of one saved bandwidth unit
  double reward_per_unit = 0.5;     ///< c_s, reward for one contributed unit
};

/// Eq. 2 — cloud bandwidth reduction for n fog-served of N total players
/// with m supernodes.
double bandwidth_reduction(const ProviderEconomics& econ, std::size_t total_players,
                           std::size_t fog_served_players, std::size_t supernodes);

/// Eq. 3 — provider's net saving given the supernode fleet. Callers should
/// check feasibility (Eq. 4) first; the value is still defined otherwise.
double provider_saving(const ProviderEconomics& econ, std::size_t fog_served_players,
                       std::size_t supernodes,
                       const std::vector<SupernodeContribution>& fleet);

/// Eq. 4 — can the fleet actually carry n players' streams?
bool fleet_feasible(const ProviderEconomics& econ, std::size_t fog_served_players,
                    const std::vector<SupernodeContribution>& fleet);

/// Eq. 6 — marginal gain of deploying supernode `sn` that newly covers
/// `new_players` players.
double marginal_supernode_gain(const ProviderEconomics& econ, std::size_t new_players,
                               const SupernodeContribution& sn);

/// The §3.1.2 observation made operational: "given a specific n, saved
/// cost C_g increases when m decreases". Greedily selects the cheapest
/// feasible sub-fleet (fewest, largest contributors first) that still
/// carries `fog_served_players` streams (Eq. 4), maximizing Eq. 3 among
/// prefix fleets. Returns the chosen indices into `candidates` (empty if
/// no feasible fleet exists).
struct FleetPlan {
  std::vector<std::size_t> chosen;  ///< indices into the candidate list
  double saving = 0.0;              ///< C_g of the chosen fleet
  bool feasible = false;
};
FleetPlan plan_min_fleet(const ProviderEconomics& econ, std::size_t fog_served_players,
                         const std::vector<SupernodeContribution>& candidates);

}  // namespace cloudfog::economics
