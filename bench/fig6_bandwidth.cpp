// Reproduces Fig. 6: server (cloud) bandwidth consumption vs number of
// players, for Cloud, CDN-45/8, CDN and CloudFog.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace cloudfog;
  const auto scale = bench::scale_from_args(argc, argv);
  bench::print(core::population_sweep(core::TestbedProfile::kPeerSim,
                                      {2000, 4000, 6000, 8000, 10000}, scale)
                   .bandwidth);
  bench::print(core::population_sweep(core::TestbedProfile::kPlanetLab,
                                      {150, 300, 450, 600, 750}, scale)
                   .bandwidth);
  return 0;
}
