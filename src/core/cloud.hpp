// The cloud: datacenters plus the supernode registry (paper §3.2.1).
//
// The cloud "stores the information of supernodes in the system in a table
// including their IP addresses and available capacities. When a newly
// joined node requests a supernode, the cloud returns a number of
// supernodes that have available capacities and are physically close to
// the player" — closeness judged by IP geolocation, which is deliberately
// noisy here (see net::IpLocator), so the player's own RTT probing still
// has work to do.
//
// Candidate discovery runs on a geo-grid spatial index by default
// (SupernodeIndex, DESIGN.md §10); the exact-equivalent linear scan is
// kept as the engine of record for property tests and the tracked bench
// baseline. nearest_datacenter memoizes per distinct endpoint — endpoints
// and the datacenter set are immutable after construction.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/entities.hpp"
#include "core/supernode_index.hpp"
#include "net/ip_locator.hpp"
#include "net/latency_model.hpp"

namespace cloudfog::core {

/// Which engine answers candidate_supernodes. kGrid and kLinear return
/// identical results (machine-checked by the grid/linear property test);
/// kLinear exists as the reference + recorded perf baseline.
enum class CandidateMode { kGrid, kLinear };

class Cloud {
 public:
  Cloud(std::vector<DatacenterState> datacenters, const net::LatencyModel& latency,
        net::IpLocator locator);

  std::size_t datacenter_count() const { return datacenters_.size(); }
  DatacenterState& datacenter(std::size_t i);
  const DatacenterState& datacenter(std::size_t i) const;
  std::vector<DatacenterState>& datacenters() { return datacenters_; }
  const std::vector<DatacenterState>& datacenters() const { return datacenters_; }

  /// Index of the datacenter with the lowest RTT to `who` — where the
  /// player's game state lives and where direct streaming comes from.
  /// Memoized per distinct endpoint (both sides are immutable).
  std::size_t nearest_datacenter(const net::Endpoint& who) const;

  /// Registers a supernode in the table (geolocating its IP).
  void register_supernode(SupernodeState& sn, util::Rng& rng);

  /// Removes a supernode from the table.
  void unregister_supernode(const SupernodeState& sn);

  /// §3.2.1 candidate lookup: among supernodes that are deployed, alive
  /// and have spare capacity, the `count` closest to the player by
  /// geolocated distance. Returns supernode indices into `fleet`.
  std::vector<std::size_t> candidate_supernodes(const net::Endpoint& player,
                                                const std::vector<SupernodeState>& fleet,
                                                std::size_t count) const;

  /// Allocation-free variant: fills `out` (cleared first). This is the
  /// join/migration hot path — callers own the scratch buffer.
  void candidate_supernodes_into(const net::Endpoint& player,
                                 const std::vector<SupernodeState>& fleet, std::size_t count,
                                 std::vector<std::size_t>& out) const;

  /// Reference implementation: full linear scan, ordered by
  /// (distance, index). Element-for-element identical to the grid path.
  void candidate_supernodes_linear(const net::Endpoint& player,
                                   const std::vector<SupernodeState>& fleet, std::size_t count,
                                   std::vector<std::size_t>& out) const;

  CandidateMode candidate_mode() const { return mode_; }
  void set_candidate_mode(CandidateMode mode) { mode_ = mode; }

  const net::IpLocator& locator() const { return locator_; }
  const net::LatencyModel& latency() const { return latency_; }

 private:
  /// Lazily (re)builds the spatial index when the fleet identity or the
  /// registration epoch changed since the last build.
  void ensure_index(const std::vector<SupernodeState>& fleet) const;

  struct EndpointKey {
    std::uint64_t x = 0;
    std::uint64_t y = 0;
    std::uint64_t access = 0;

    friend bool operator==(const EndpointKey&, const EndpointKey&) = default;
  };
  struct EndpointKeyHash {
    std::size_t operator()(const EndpointKey& k) const;
  };

  std::vector<DatacenterState> datacenters_;
  const net::LatencyModel& latency_;
  net::IpLocator locator_;

  CandidateMode mode_ = CandidateMode::kGrid;
  /// Bumped on every (un)registration — geolocations may have changed.
  std::uint64_t registry_epoch_ = 1;
  mutable SupernodeIndex index_;
  mutable const SupernodeState* indexed_fleet_ = nullptr;
  mutable std::size_t indexed_size_ = 0;
  mutable std::uint64_t indexed_epoch_ = 0;
  /// Linear-scan scratch, reused across calls (single-threaded contract).
  mutable std::vector<std::pair<double, std::size_t>> linear_scratch_;
  mutable std::unordered_map<EndpointKey, std::size_t, EndpointKeyHash> nearest_dc_memo_;
};

}  // namespace cloudfog::core
