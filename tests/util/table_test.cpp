#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/require.hpp"

namespace cloudfog::util {
namespace {

TEST(Table, StoresCells) {
  Table t("demo");
  t.set_header({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_EQ(t.column_count(), 2u);
  EXPECT_EQ(t.cell(0, 1), "2");
  EXPECT_EQ(t.cell(1, 0), "3");
}

TEST(Table, NumericRowFormatting) {
  Table t("demo");
  t.set_header({"x", "y"});
  t.add_numeric_row({1.23456, 2.0}, 2);
  EXPECT_EQ(t.cell(0, 0), "1.23");
  EXPECT_EQ(t.cell(0, 1), "2.00");
}

TEST(Table, RejectsRowWidthMismatch) {
  Table t("demo");
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ConfigError);
}

TEST(Table, RejectsRowBeforeHeader) {
  Table t("demo");
  EXPECT_THROW(t.add_row({"x"}), ConfigError);
}

TEST(Table, RejectsHeaderAfterRows) {
  Table t("demo");
  t.set_header({"a"});
  t.add_row({"1"});
  EXPECT_THROW(t.set_header({"b"}), ConfigError);
}

TEST(Table, PrintContainsTitleHeaderAndCells) {
  Table t("my title");
  t.set_header({"col1", "col2"});
  t.add_row({"v1", "v2"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("my title"), std::string::npos);
  EXPECT_NE(out.find("col1"), std::string::npos);
  EXPECT_NE(out.find("v2"), std::string::npos);
}

TEST(Table, CsvRoundTripSimple) {
  Table t("demo");
  t.set_header({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, CsvEscapesCommasAndQuotes) {
  Table t("demo");
  t.set_header({"a"});
  t.add_row({"hello, \"world\""});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a\n\"hello, \"\"world\"\"\"\n");
}

TEST(Table, CellBoundsChecked) {
  Table t("demo");
  t.set_header({"a"});
  t.add_row({"1"});
  EXPECT_THROW(t.cell(1, 0), ConfigError);
  EXPECT_THROW(t.cell(0, 1), ConfigError);
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

}  // namespace
}  // namespace cloudfog::util
