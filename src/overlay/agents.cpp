#include "overlay/agents.hpp"

#include <algorithm>

#include "util/distributions.hpp"
#include "util/require.hpp"

namespace cloudfog::overlay {

SupernodeAgent::SupernodeAgent(MessageNetwork& network, const net::Endpoint& where,
                               int capacity)
    : network_(network), capacity_(capacity) {
  CLOUDFOG_REQUIRE(capacity >= 0, "negative capacity");
  address_ = network_.register_endpoint(where, [this](const Message& m) { handle(m); });
}

void SupernodeAgent::fail() {
  alive_ = false;
  network_.set_down(address_, true);
}

void SupernodeAgent::release_seat() {
  CLOUDFOG_REQUIRE(served_ > 0, "seat underflow");
  --served_;
}

void SupernodeAgent::handle(const Message& msg) {
  Message reply;
  reply.src = address_;
  reply.dst = msg.src;
  reply.session = msg.session;
  switch (msg.kind) {
    case MessageKind::kProbe:
      reply.kind = MessageKind::kProbeReply;
      break;
    case MessageKind::kCapacityAsk:
      if (accepting()) {
        ++served_;  // the seat is reserved with the grant
        reply.kind = MessageKind::kCapacityGrant;
      } else {
        reply.kind = MessageKind::kCapacityDeny;
      }
      break;
    case MessageKind::kConnect:
      reply.kind = MessageKind::kConnectAck;
      break;
    case MessageKind::kLivenessProbe:
      reply.kind = MessageKind::kLivenessReply;
      break;
    default:
      return;  // not addressed to this protocol role
  }
  network_.send(reply);
}

CloudDirectoryAgent::CloudDirectoryAgent(MessageNetwork& network, const net::Endpoint& where,
                                         std::size_t candidate_count,
                                         double geo_error_sigma_km, util::Rng rng)
    : network_(network),
      candidate_count_(candidate_count),
      geo_error_sigma_km_(geo_error_sigma_km),
      rng_(rng) {
  CLOUDFOG_REQUIRE(candidate_count >= 1, "need at least one candidate");
  address_ = network_.register_endpoint(where, [this](const Message& m) { handle(m); });
}

void CloudDirectoryAgent::admit(Address supernode, net::GeoPoint believed_position) {
  table_.push_back(Entry{supernode, believed_position, true});
}

void CloudDirectoryAgent::update_load_estimate(Address supernode, bool accepting) {
  for (auto& entry : table_) {
    if (entry.address == supernode) entry.believed_accepting = accepting;
  }
}

void CloudDirectoryAgent::handle(const Message& msg) {
  switch (msg.kind) {
    case MessageKind::kRegister: {
      // Geolocate the registrant's "IP": its true position plus
      // city-scale error.
      const net::GeoPoint truth = network_.endpoint_of(msg.src).position;
      admit(msg.src,
            net::GeoPoint{truth.x_km + geo_error_sigma_km_ * util::sample_standard_normal(rng_),
                          truth.y_km + geo_error_sigma_km_ * util::sample_standard_normal(rng_)});
      Message ack;
      ack.src = address_;
      ack.dst = msg.src;
      ack.kind = MessageKind::kRegisterAck;
      ack.session = msg.session;
      network_.send(ack);
      break;
    }
    case MessageKind::kCandidateRequest: {
      // k believed-accepting supernodes nearest to the requester.
      const net::GeoPoint player = network_.endpoint_of(msg.src).position;
      std::vector<const Entry*> live;
      for (const auto& entry : table_) {
        if (entry.believed_accepting) live.push_back(&entry);
      }
      const std::size_t take = std::min(candidate_count_, live.size());
      std::partial_sort(live.begin(), live.begin() + static_cast<std::ptrdiff_t>(take),
                        live.end(), [&player](const Entry* a, const Entry* b) {
                          return net::distance_km(player, a->believed_position) <
                                 net::distance_km(player, b->believed_position);
                        });
      // One reply per candidate (payload = candidate address), then a
      // terminating reply with payload −1 marking the end of the list.
      for (std::size_t i = 0; i < take; ++i) {
        Message reply;
        reply.src = address_;
        reply.dst = msg.src;
        reply.kind = MessageKind::kCandidateReply;
        reply.session = msg.session;
        reply.payload = static_cast<std::int64_t>(live[i]->address);
        network_.send(reply);
      }
      Message done;
      done.src = address_;
      done.dst = msg.src;
      done.kind = MessageKind::kCandidateReply;
      done.session = msg.session;
      done.payload = -1;  // end of list
      network_.send(done);
      break;
    }
    default:
      break;
  }
}

}  // namespace cloudfog::overlay
