file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_provisioning_continuity.dir/fig15_provisioning_continuity.cpp.o"
  "CMakeFiles/bench_fig15_provisioning_continuity.dir/fig15_provisioning_continuity.cpp.o.d"
  "bench_fig15_provisioning_continuity"
  "bench_fig15_provisioning_continuity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_provisioning_continuity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
