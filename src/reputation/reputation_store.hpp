// Per-player private reputation store (paper §3.2.1, Eq. 7).
//
// Every player keeps its *own* ratings of the supernodes that served it and
// never aggregates opinions from other players — this is the paper's
// defence against sybil attacks and rating collusion: an attacker's forged
// identities can only pollute their own private views, never the victim's.
//
// A supernode's score for a player is the age-weighted average of that
// player's ratings:
//   s_ij = Σ_k r_k · λ^{d_k} / Σ_k λ^{d_k},   0 < λ < 1,
// where d_k is the age in days of the k-th rating. A supernode the player
// has never interacted with scores 0 — unknown supernodes rank below any
// that have performed, however poorly rated, matching the paper's
// "reputation scores of supernodes that have no previous interactions
// equal 0".
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "reputation/rating.hpp"

namespace cloudfog::reputation {

using SupernodeId = std::size_t;

class ReputationStore {
 public:
  /// `aging_factor` is λ ∈ (0,1); `max_ratings_per_supernode` bounds the
  /// retained history (oldest evicted first; N_r in the paper).
  explicit ReputationStore(double aging_factor = 0.9,
                           std::size_t max_ratings_per_supernode = 64);

  double aging_factor() const { return aging_factor_; }

  /// Records a rating of `sn` on `day` with value in [0,1].
  void add_rating(SupernodeId sn, double value, int day);

  /// s_ij as of `current_day`. 0 for unknown supernodes.
  double score(SupernodeId sn, int current_day) const;

  /// Number of retained ratings for `sn`.
  std::size_t rating_count(SupernodeId sn) const;

  /// Erases every rating of `sn`: the supernode identity disappeared and
  /// a fresh one took its place (whitewashing — §3.2.1's defence is that
  /// the reborn identity scores 0 like any unknown, losing whatever good
  /// standing the old identity had accumulated).
  void forget(SupernodeId sn);

  /// Supernodes with at least one rating.
  std::vector<SupernodeId> rated_supernodes() const;

  /// Drops ratings whose weight λ^age has decayed below `min_weight`
  /// (housekeeping; keeps the store bounded over long runs).
  void prune(int current_day, double min_weight = 1e-4);

 private:
  double aging_factor_;
  std::size_t max_ratings_;
  std::unordered_map<SupernodeId, std::vector<Rating>> ratings_;
};

}  // namespace cloudfog::reputation
