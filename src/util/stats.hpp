// Small statistics toolkit: streaming moments, exact percentiles over
// retained samples, and fixed-width histograms. Used by the metrics
// collector and by the benchmark harnesses that regenerate the paper's
// figures.
#pragma once

#include <cstddef>
#include <vector>

namespace cloudfog::util {

/// Streaming mean/variance/min/max (Welford). O(1) memory.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::size_t count() const { return count_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return mean() * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Retains every sample; supports exact order statistics.
class SampleSet {
 public:
  void add(double x);
  void reserve(std::size_t n) { samples_.reserve(n); }
  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  /// Exact p-quantile, p in [0,1], linear interpolation between ranks.
  double percentile(double p) const;
  double median() const { return percentile(0.5); }
  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool dirty_ = true;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// first/last bin so no data is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x);
  std::size_t bin_count() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const;
  std::size_t total() const { return total_; }
  /// Fraction of samples with value < x (linear within the containing bin).
  double cdf(double x) const;
  double bin_low(std::size_t bin) const;
  double bin_high(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace cloudfog::util
