// Deterministic fault schedules.
//
// A FaultPlan is a time-ordered list of typed FaultSpecs covering the whole
// run horizon, generated up front from a seed (or handed in explicitly).
// Because the schedule is data — not decisions made while the simulation
// runs — the same (plan seed, system seed) pair always produces the exact
// same fault/recovery sequence, and a chaos run can be replayed from a CI
// log via the CLOUDFOG_FAULT_SEED override.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "obs/note_table.hpp"
#include "util/rng.hpp"

namespace cloudfog::fault {

enum class FaultKind : std::uint8_t {
  kSupernodeCrash,    ///< fail-stop: the node vanishes without notice (§3.2.2)
  kSlowNode,          ///< render/encode latency inflated by `magnitude` ms
  kNetworkPartition,  ///< regions `target` and `target_b` cannot reach each other
  kPacketLossBurst,   ///< cloud→supernode update channel drops `magnitude` of packets
  kMessageDelayBurst, ///< cloud→supernode updates delayed by `magnitude` ms
  kProbeBlackhole,    ///< node silently drops probes (looks dead, is not)
};

const char* fault_kind_name(FaultKind kind);

/// `fault_kind_name(kind)` as an interned trace note (allocation-free).
obs::NoteId fault_kind_note(FaultKind kind);

/// Target wildcard: the executor picks a victim at apply time (e.g. a
/// supernode that is actually serving players, for maximum blast radius).
inline constexpr std::size_t kAnyTarget = static_cast<std::size_t>(-1);

struct FaultSpec {
  FaultKind kind = FaultKind::kSupernodeCrash;
  double at_s = 0.0;       ///< injection time on the simulation clock
  double duration_s = 0.0; ///< <= 0 means the fault never clears on its own
  /// Supernode index, or region index for partitions, or kAnyTarget.
  std::size_t target = kAnyTarget;
  /// Second region of a partition; unused by other kinds.
  std::size_t target_b = kAnyTarget;
  /// Kind-specific intensity: added ms for slow/delay, loss fraction for
  /// packet loss; unused by crash/partition/blackhole.
  double magnitude = 0.0;

  bool permanent() const { return duration_s <= 0.0; }
};

/// Relative weights of each fault kind in a generated plan.
struct FaultMix {
  double crash = 1.0;
  double slow_node = 1.0;
  double partition = 0.25;
  double loss_burst = 0.5;
  double delay_burst = 0.5;
  double blackhole = 0.25;

  double total() const {
    return crash + slow_node + partition + loss_burst + delay_burst + blackhole;
  }
};

/// Axis-aligned geographic box on the simulation plane, in kilometres.
/// Used to select correlated fault victims ("the ISP serving this region
/// went down") instead of uniform-random fleet members.
struct GeoBox {
  double x0_km = 0.0;
  double y0_km = 0.0;
  double x1_km = 0.0;
  double y1_km = 0.0;

  bool contains(double x_km, double y_km) const {
    return x_km >= x0_km && x_km <= x1_km && y_km >= y0_km && y_km <= y1_km;
  }
  double center_x_km() const { return 0.5 * (x0_km + x1_km); }
  double center_y_km() const { return 0.5 * (y0_km + y1_km); }
};

/// A supernode's position on the plane, indexed like the fleet. The fault
/// layer cannot depend on net::GeoPoint (it sits below net), so it keeps
/// its own coordinate pair.
struct NodePosition {
  double x_km = 0.0;
  double y_km = 0.0;
};

/// Indices of the positions that fall inside `box`, ascending.
std::vector<std::size_t> nodes_in_box(const std::vector<NodePosition>& positions,
                                      const GeoBox& box);

struct FaultPlanConfig {
  /// Master switch. When false the injector is never constructed and the
  /// simulation byte-for-byte matches a build without the fault layer.
  bool enabled = false;
  /// Length of the schedule (seconds of sim time to cover).
  double horizon_s = 0.0;
  /// Mean total fault arrival rate across all kinds.
  double faults_per_hour = 0.0;
  FaultMix mix;
  /// Mean of the exponential fault-duration draw (clamped to >= 60 s).
  double mean_duration_s = 1800.0;
  /// Latency added by a slow-node fault (ms).
  double slow_ms = 40.0;
  /// Delay added by an update-channel delay burst (ms).
  double delay_ms = 120.0;
  /// Loss fraction of an update-channel loss burst.
  double loss_fraction = 0.3;
  /// Target spaces for random victim selection.
  std::size_t supernode_count = 0;
  std::size_t region_count = 0;
  /// Plan seed; 0 = derive from the owning system's seed.
  std::uint64_t seed = 0;
  /// Hand-written specs merged into the generated schedule (used by
  /// failure_rate_sweep to express exact per-cycle crash bursts).
  std::vector<FaultSpec> extra_specs;
  /// Geographic victim selection. When `target_box` is set, generated
  /// faults that name a random supernode victim (crash, slow node, probe
  /// blackhole) draw uniformly from the supernodes whose `positions` entry
  /// falls inside the box instead of the whole fleet. `positions` is
  /// indexed like the fleet; an empty vector or a box containing no nodes
  /// falls back to whole-fleet selection.
  std::vector<NodePosition> positions;
  std::optional<GeoBox> target_box;
};

class FaultPlan {
 public:
  /// Draws a schedule from `cfg`: per-kind Poisson arrival walks over the
  /// horizon with exponential durations, merged with cfg.extra_specs and
  /// sorted by injection time (stable for equal times).
  static FaultPlan generate(const FaultPlanConfig& cfg);

  /// Wraps an explicit spec list (sorted by time) with no random drawing.
  static FaultPlan from_specs(std::vector<FaultSpec> specs);

  const std::vector<FaultSpec>& specs() const { return specs_; }
  bool empty() const { return specs_.empty(); }
  std::size_t size() const { return specs_.size(); }

 private:
  std::vector<FaultSpec> specs_;
};

/// Compiles a correlated regional-outage burst ("the ISP serving this box
/// went dark"): `crash_fraction` of the in-box supernodes crash at `at_s`
/// and recover when the outage lifts, and the cloud→supernode update
/// channel suffers a loss + delay burst for the duration. Victim choice is
/// seeded, so the same (positions, box, seed) triple always fails the same
/// nodes. Returns an empty vector when the box contains no nodes.
std::vector<FaultSpec> regional_outage_specs(const std::vector<NodePosition>& positions,
                                             const GeoBox& box, double at_s,
                                             double duration_s, double crash_fraction,
                                             double loss_fraction, double delay_ms,
                                             std::uint64_t seed);

/// Resolves the effective plan seed: the CLOUDFOG_FAULT_SEED environment
/// variable wins (so CI logs reproduce locally), else `fallback`.
std::uint64_t fault_seed_from_env(std::uint64_t fallback);

}  // namespace cloudfog::fault
