#!/usr/bin/env bash
# Full verification: tier-1 tests twice (plain and sanitized builds) plus a
# bench smoke test that exercises the observability exports.
#
#   scripts/check.sh            everything
#   scripts/check.sh --quick    plain tests + bench smoke only (no sanitizers)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || echo 4)
QUICK=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "== tier-1: plain build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

if [ "$QUICK" -eq 0 ]; then
  echo "== tier-1: ASan+UBSan build =="
  cmake -B build-asan -S . -DENABLE_SANITIZERS=ON >/dev/null
  cmake --build build-asan -j "$JOBS"
  ctest --test-dir build-asan --output-on-failure -j "$JOBS"
fi

echo "== bench smoke: observability exports =="
SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT
./build/bench/bench_fig7_latency --quick \
  --report-json "$SMOKE_DIR/report.json" \
  --trace "$SMOKE_DIR/trace.jsonl" >/dev/null

[ -s "$SMOKE_DIR/report.json" ] || { echo "report.json is empty" >&2; exit 1; }
[ -s "$SMOKE_DIR/trace.jsonl" ] || { echo "trace.jsonl is empty" >&2; exit 1; }

if command -v python3 >/dev/null 2>&1; then
  python3 - "$SMOKE_DIR/report.json" "$SMOKE_DIR/trace.jsonl" <<'EOF'
import json, sys
report_path, trace_path = sys.argv[1], sys.argv[2]
report = json.load(open(report_path))
assert report["schema"].startswith("cloudfog.run_report/"), report["schema"]
assert report["runs"], "no runs in report"
assert len(report["counters"]) >= 5, "expected at least five counters"
assert report["phases"], "no phase profile"
last = float("-inf")
n = 0
with open(trace_path) as f:
    for line in f:
        t = json.loads(line)["t"]
        assert t >= last, f"trace not monotone at line {n}"
        last = t
        n += 1
assert n > 0, "empty trace"
print(f"report OK ({len(report['runs'])} runs, {len(report['counters'])} counters); "
      f"trace OK ({n} events, monotone)")
EOF
else
  echo "python3 not found: skipping JSON schema validation"
fi

echo "all checks passed"
