// Fog management: supernode selection, player/supernode churn handling
// (paper §3.2).
//
// Selection protocol for a joining player:
//   1. ask the cloud for the `candidate_count` geographically closest
//      supernodes with spare capacity;
//   2. probe RTT to each; drop candidates above the game's threshold
//      L_max (the game's latency requirement);
//   3. order the survivors by this player's private reputation score
//      (descending) — or randomly when the reputation strategy is off;
//   4. sequentially ask each for capacity; connect to the first that still
//      has room (capacity may vanish between lookup and claim);
//   5. if none accepts, fall back to direct cloud streaming.
//
// The manager also estimates the wall-clock cost of each operation as the
// sum of the message round-trips it performs — these are the Fig. 9 join
// and migration latencies.
#pragma once

#include <cstddef>
#include <vector>

#include "core/cloud.hpp"
#include "core/entities.hpp"
#include "fault/fault_state.hpp"
#include "fault/retry_policy.hpp"
#include "util/rng.hpp"

namespace cloudfog::core {

struct FogManagerConfig {
  std::size_t candidate_count = 8;
  /// L_max: a probed supernode is kept only if its one-way transmission
  /// delay to the player is within the game's latency requirement times
  /// this fraction — a supernode that alone eats the whole budget cannot
  /// possibly stream in time (§3.2.1).
  double lmax_fraction_of_requirement = 1.0;
  /// Failure detection (§3.2.2 "normal nodes probe their supernodes
  /// periodically"): attempt_timeout_ms is the probe period, max_attempts
  /// the miss limit; detection_ms() — 500 ms by default — is the time a
  /// disconnected player takes to declare its supernode dead.
  fault::RetryPolicy detection = fault::RetryPolicy::liveness(250.0, 2);
  /// Selection/claim budget: each sequential capacity claim is one
  /// attempt, attempt_timeout_ms is what an unanswered probe costs (the
  /// probe of a blackholed or partitioned node never returns), and
  /// deadline_budget_ms caps the whole search — exhaustion degrades the
  /// session to direct cloud streaming. Defaults are unbounded, which
  /// reproduces the pre-fault-layer behaviour exactly.
  fault::RetryPolicy selection{.max_attempts = 0, .attempt_timeout_ms = 400.0};
  /// Fixed handshake cost of establishing a streaming session (ms).
  double connect_setup_ms = 50.0;
};

struct SelectionOutcome {
  ServingRef serving;          ///< supernode or cloud fallback
  double join_latency_ms = 0;  ///< simulated protocol time
  int probes = 0;              ///< RTT probes issued
  int capacity_asks = 0;       ///< sequential capacity claims attempted
  /// True when the selection deadline budget ran out before a supernode
  /// accepted — the caller should treat the cloud attach as a degraded
  /// fallback (hysteresis applies before returning to fog).
  bool budget_exhausted = false;
};

class FogManager {
 public:
  FogManager(FogManagerConfig cfg, const Cloud& cloud, const net::LatencyModel& latency);

  const FogManagerConfig& config() const { return cfg_; }

  /// Attaches the live fault projection (nullptr detaches). While any
  /// fault is active, probes honour blackholes and partitions.
  void set_fault_state(const fault::FaultState* faults) { faults_ = faults; }

  /// Runs the full §3.2.1 protocol for `player`. Mutates the chosen
  /// supernode's load and the player's serving ref + candidate cache.
  /// `reputation_enabled` toggles step 3; `current_day` ages ratings.
  SelectionOutcome select_supernode(PlayerState& player,
                                    std::vector<SupernodeState>& fleet,
                                    const game::GameCatalog& catalog, int current_day,
                                    bool reputation_enabled, util::Rng& rng) const;

  /// §3.2.2 migration: the serving supernode failed. Tries the cached
  /// candidate list first, then the full protocol. Returns the outcome
  /// with latency including failure detection.
  SelectionOutcome migrate(PlayerState& player, std::vector<SupernodeState>& fleet,
                           const game::GameCatalog& catalog, int current_day,
                           bool reputation_enabled, util::Rng& rng) const;

  /// Detaches a player from its current serving entity (frees the
  /// supernode seat; datacenter/CDN tallies are engine-recomputed).
  void release(PlayerState& player, std::vector<SupernodeState>& fleet) const;

  /// Simulated time for a new supernode to join the fog: one RTT to the
  /// cloud plus registration processing.
  double supernode_join_latency_ms(const SupernodeState& sn) const;

 private:
  /// Steps 2–5 over an explicit candidate list; shared by select/migrate.
  /// Claims draw on `budget` (may be null for an unbounded search).
  SelectionOutcome try_candidates(PlayerState& player, std::vector<SupernodeState>& fleet,
                                  const std::vector<std::size_t>& candidates,
                                  double lmax_ms, int current_day, bool reputation_enabled,
                                  util::Rng& rng, fault::RetryBudget* budget) const;

  /// Full protocol threading one shared budget (used by migrate so the
  /// cached-candidate pass and the full retry drain the same deadline).
  SelectionOutcome select_with_budget(PlayerState& player,
                                      std::vector<SupernodeState>& fleet,
                                      const game::GameCatalog& catalog, int current_day,
                                      bool reputation_enabled, util::Rng& rng,
                                      fault::RetryBudget& budget) const;

  /// player.nearest_dc_cache, computed on first use (endpoints and the
  /// datacenter set are immutable).
  std::size_t nearest_dc(PlayerState& player) const;

  FogManagerConfig cfg_;
  const Cloud& cloud_;
  const net::LatencyModel& latency_;
  const fault::FaultState* faults_ = nullptr;
  /// Probe-qualification scratch, reused across selections (the manager's
  /// callers are single-threaded; try_candidates never nests).
  struct Probed {
    std::size_t index = 0;
    double rtt_ms = 0.0;
    double score = 0.0;
  };
  mutable std::vector<Probed> qualified_;
};

}  // namespace cloudfog::core
