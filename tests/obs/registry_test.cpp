#include "obs/registry.hpp"

#include <gtest/gtest.h>

namespace cloudfog::obs {
namespace {

TEST(Registry, CounterInterningIsIdempotent) {
  Registry reg;
  const CounterId a = reg.counter("joins");
  const CounterId b = reg.counter("joins");
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(reg.counter_count(), 1u);
  const CounterId c = reg.counter("leaves");
  EXPECT_NE(a.index, c.index);
  EXPECT_EQ(reg.counter_count(), 2u);
}

TEST(Registry, CounterAccumulates) {
  Registry reg;
  const CounterId id = reg.counter("events");
  reg.add(id);
  reg.add(id, 4);
  EXPECT_EQ(reg.counter_value(id), 5u);
  EXPECT_EQ(reg.counter_value("events"), 5u);
  EXPECT_EQ(reg.counter_value("never-registered"), 0u);
}

TEST(Registry, GaugeKeepsLastValue) {
  Registry reg;
  const GaugeId id = reg.gauge("online");
  reg.set(id, 10.0);
  reg.set(id, 3.0);
  EXPECT_DOUBLE_EQ(reg.gauge_value(id), 3.0);
  EXPECT_DOUBLE_EQ(reg.gauge_value("online"), 3.0);
}

TEST(Registry, HistogramBinsAndClamps) {
  Registry reg;
  const HistogramId id = reg.histogram("lat", 0.0, 100.0, 10);
  reg.observe(id, 5.0);    // bin 0
  reg.observe(id, 55.0);   // bin 5
  reg.observe(id, -20.0);  // underflow, clamps to bin 0
  reg.observe(id, 500.0);  // overflow, clamps to last bin
  const auto& cell = reg.histogram_cell(id.index);
  EXPECT_EQ(cell.total, 4u);
  EXPECT_EQ(cell.counts[0], 2u);
  EXPECT_EQ(cell.counts[5], 1u);
  EXPECT_EQ(cell.counts[9], 1u);
  EXPECT_EQ(cell.underflow, 1u);
  EXPECT_EQ(cell.overflow, 1u);
  EXPECT_DOUBLE_EQ(cell.bin_low(5), 50.0);
  EXPECT_DOUBLE_EQ(cell.bin_high(5), 60.0);
}

TEST(Registry, HistogramFirstRegistrationWins) {
  Registry reg;
  const HistogramId a = reg.histogram("lat", 0.0, 100.0, 10);
  const HistogramId b = reg.histogram("lat", 0.0, 9999.0, 3);
  EXPECT_EQ(a.index, b.index);
  EXPECT_DOUBLE_EQ(reg.histogram_cell(a.index).hi, 100.0);
  EXPECT_EQ(reg.histogram_cell(a.index).counts.size(), 10u);
}

TEST(Registry, SnapshotDeltaSubtractsCountersKeepsGauges) {
  Registry reg;
  const CounterId c = reg.counter("joins");
  const GaugeId g = reg.gauge("online");
  const HistogramId h = reg.histogram("lat", 0.0, 10.0, 2);
  reg.add(c, 3);
  reg.set(g, 7.0);
  reg.observe(h, 1.0);
  const RegistrySnapshot before = reg.snapshot();

  reg.add(c, 5);
  reg.set(g, 9.0);
  reg.observe(h, 1.0);
  reg.observe(h, 8.0);
  const RegistrySnapshot after = reg.snapshot();

  const RegistrySnapshot delta = after.delta_since(before);
  EXPECT_EQ(delta.counters[c.index], 5u);
  EXPECT_DOUBLE_EQ(delta.gauges[g.index], 9.0);  // instantaneous, not subtracted
  EXPECT_EQ(delta.histogram_counts[h.index][0], 1u);
  EXPECT_EQ(delta.histogram_counts[h.index][1], 1u);
}

TEST(Registry, SnapshotDeltaHandlesMetricsRegisteredInBetween) {
  Registry reg;
  const CounterId c = reg.counter("early");
  reg.add(c, 2);
  const RegistrySnapshot before = reg.snapshot();
  const CounterId late = reg.counter("late");
  reg.add(late, 4);
  const RegistrySnapshot delta = reg.snapshot().delta_since(before);
  EXPECT_EQ(delta.counters[c.index], 0u);
  EXPECT_EQ(delta.counters[late.index], 4u);  // counts from zero
}

TEST(Registry, ResetValuesKeepsHandles) {
  Registry reg;
  const CounterId c = reg.counter("joins");
  const HistogramId h = reg.histogram("lat", 0.0, 10.0, 2);
  reg.add(c, 3);
  reg.observe(h, 1.0);
  reg.reset_values();
  EXPECT_EQ(reg.counter_value(c), 0u);
  EXPECT_EQ(reg.histogram_cell(h.index).total, 0u);
  EXPECT_EQ(reg.counter_count(), 1u);
  reg.add(c);
  EXPECT_EQ(reg.counter_value("joins"), 1u);
}

}  // namespace
}  // namespace cloudfog::obs
