// Plain-text table rendering for the benchmark harnesses. Each figure
// reproduction prints one of these tables so the series can be compared
// against the paper by eye or diffed across runs; rows can also be dumped
// as CSV for external plotting.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace cloudfog::util {

/// Column-aligned table with a title, header row and numeric/text cells.
class Table {
 public:
  explicit Table(std::string title);

  /// Sets the header row; must be called before any add_row.
  void set_header(std::vector<std::string> header);

  /// Appends a row of preformatted cells; width must match the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  void add_numeric_row(const std::vector<double>& cells, int precision = 3);

  std::size_t row_count() const { return rows_.size(); }
  std::size_t column_count() const { return header_.size(); }
  const std::string& cell(std::size_t row, std::size_t col) const;

  /// Renders an aligned ASCII table.
  void print(std::ostream& os) const;

  /// Renders RFC-4180-ish CSV (quotes cells containing commas/quotes).
  void print_csv(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for table cells).
std::string format_double(double v, int precision = 3);

}  // namespace cloudfog::util
