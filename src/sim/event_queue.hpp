// Priority queue of timestamped events with stable FIFO ordering among
// simultaneous events — equal-time events fire in the order they were
// scheduled, which keeps runs deterministic regardless of heap internals.
// Cancellation is lazy: cancelled entries are skipped at pop time.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

namespace cloudfog::sim {

/// Simulation time, in seconds since the start of the run.
using SimTime = double;

/// Opaque handle returned by schedule(); can be used to cancel.
using EventId = std::uint64_t;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `cb` to fire at absolute time `at`. Requires at >= 0.
  EventId schedule(SimTime at, Callback cb);

  /// Cancels a pending event. Returns false if the event already fired,
  /// was already cancelled, or never existed. Amortized O(1).
  bool cancel(EventId id);

  bool empty() const { return callbacks_.empty(); }
  std::size_t size() const { return callbacks_.size(); }

  /// Time of the earliest pending event; requires !empty().
  SimTime next_time();

  struct PoppedEvent {
    SimTime time;
    EventId id;
    Callback callback;
  };

  /// Removes and returns the earliest pending event; requires !empty().
  PoppedEvent pop();

 private:
  struct Entry {
    SimTime time{};
    std::uint64_t seq = 0;  // tie-break: schedule order
    EventId id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_map<EventId, Callback> callbacks_;  // erased on cancel/pop
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;

  void drop_dead_entries();
};

}  // namespace cloudfog::sim
