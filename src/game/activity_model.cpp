#include "game/activity_model.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/require.hpp"

namespace cloudfog::game {

ActivityModel::ActivityModel(ActivityModelConfig cfg) : cfg_(cfg) {
  CLOUDFOG_REQUIRE(cfg.casual_fraction >= 0.0 && cfg.regular_fraction >= 0.0 &&
                       cfg.casual_fraction + cfg.regular_fraction <= 1.0,
                   "duration-class fractions must form a distribution");
  CLOUDFOG_REQUIRE(cfg.offpeak_start_prob >= 0.0 && cfg.offpeak_start_prob <= 1.0,
                   "start probability out of [0,1]");
  CLOUDFOG_REQUIRE(cfg.subcycles_per_day > 1, "need at least two subcycles");
  CLOUDFOG_REQUIRE(cfg.peak_start_subcycle > 1 && cfg.peak_start_subcycle <= cfg.subcycles_per_day,
                   "peak start out of range");
}

DurationClass ActivityModel::sample_duration_class(util::Rng& rng) const {
  const double u = rng.next_double();
  if (u < cfg_.casual_fraction) return DurationClass::kCasual;
  if (u < cfg_.casual_fraction + cfg_.regular_fraction) return DurationClass::kRegular;
  return DurationClass::kHardcore;
}

double ActivityModel::sample_play_hours(DurationClass cls, util::Rng& rng) const {
  switch (cls) {
    case DurationClass::kCasual:
      return rng.uniform(0.25, 2.0);
    case DurationClass::kRegular:
      return rng.uniform(2.0, 5.0);
    case DurationClass::kHardcore:
      return rng.uniform(5.0, 24.0);
  }
  return 1.0;
}

int ActivityModel::sample_start_subcycle(util::Rng& rng) const {
  if (rng.chance(cfg_.offpeak_start_prob)) {
    return static_cast<int>(rng.uniform_int(1, cfg_.peak_start_subcycle - 1));
  }
  return static_cast<int>(rng.uniform_int(cfg_.peak_start_subcycle, cfg_.subcycles_per_day));
}

GameId ActivityModel::choose_game(const GameCatalog& catalog,
                                  const std::vector<GameId>& friend_games,
                                  util::Rng& rng) const {
  if (friend_games.empty()) return catalog.random_game(rng).id;
  std::map<GameId, int> votes;
  for (GameId g : friend_games) ++votes[g];
  GameId best = friend_games.front();
  int best_votes = 0;
  for (const auto& [game, count] : votes) {
    if (count > best_votes) {
      best_votes = count;
      best = game;
    }
  }
  return best;
}

bool DailySession::online_at(int subcycle, int subcycles_per_day) const {
  if (subcycle < start_subcycle || subcycle > subcycles_per_day) return false;
  const int covered = static_cast<int>(std::ceil(hours));
  return subcycle < start_subcycle + covered;
}

DailySession roll_daily_session(const ActivityModel& model, DurationClass cls, util::Rng& rng) {
  DailySession session;
  session.start_subcycle = model.sample_start_subcycle(rng);
  session.hours = model.sample_play_hours(cls, rng);
  return session;
}

}  // namespace cloudfog::game
